package fairclique

import (
	"sync"
	"testing"
)

// buildDiamondGraph returns a small graph with a known (2,0) optimum:
// a balanced K4 plus a pendant vertex.
func buildDiamondGraph() *Graph {
	g := NewGraph(5)
	g.SetAttr(0, AttrA)
	g.SetAttr(1, AttrA)
	g.SetAttr(2, AttrB)
	g.SetAttr(3, AttrB)
	g.SetAttr(4, AttrA)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v)
		}
	}
	g.AddEdge(3, 4)
	return g
}

// TestGraphConcurrentReaders hammers the read-only accessors from many
// goroutines on a graph whose frozen snapshot has NOT been built yet,
// so every reader races to lazily initialize it. On the pre-fix code
// (unsynchronized g.frozen write in freeze()) this test fails under
// `go test -race`; with the mutex-guarded freeze all readers must share
// one snapshot and agree on every answer.
func TestGraphConcurrentReaders(t *testing.T) {
	for round := 0; round < 10; round++ {
		g := buildDiamondGraph() // fresh: frozen == nil, all readers race the init
		const readers = 16
		var wg sync.WaitGroup
		errs := make(chan string, readers)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if m := g.M(); m != 7 {
						errs <- "M mismatch"
						return
					}
					if !g.HasEdge(0, 1) || g.HasEdge(0, 4) {
						errs <- "HasEdge mismatch"
						return
					}
					if n := g.Neighbors(3); len(n) != 4 {
						errs <- "Neighbors mismatch"
						return
					}
					if g.Attr(2) != AttrB {
						errs <- "Attr mismatch"
						return
					}
					if g.Degree(4) != 1 {
						errs <- "Degree mismatch"
						return
					}
					if !g.IsFairClique([]int{0, 1, 2, 3}, 2, 0) {
						errs <- "IsFairClique mismatch"
						return
					}
				}
			}(r)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}

// TestGraphConcurrentFinds runs full queries concurrently on a freshly
// mutated graph (frozen invalidated), exercising freeze() under racing
// Find/Heuristic/Enumerate callers.
func TestGraphConcurrentFinds(t *testing.T) {
	g := buildDiamondGraph()
	g.AddEdge(2, 4) // invalidate any snapshot; readers below re-freeze
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Find(g, DefaultOptions(2, 0))
			if err != nil {
				t.Error(err)
				return
			}
			if res.Size() != 4 {
				t.Errorf("concurrent Find: size %d, want 4", res.Size())
			}
		}()
	}
	wg.Wait()
}

// TestSessionSnapshotVsApply pins the documented NewSession contract
// from the mutation side (TestSessionSnapshotSemantics covers the
// read side): mutating the Graph object after NewSession changes
// future Find calls on the Graph but never the session's answers,
// while the same mutation routed through Session.Apply is observed
// and matches the direct post-mutation answer exactly.
func TestSessionSnapshotVsApply(t *testing.T) {
	g := buildDiamondGraph()
	s := NewSession(g)
	spec := QuerySpec{K: 2, Delta: 0}

	before, err := s.Find(spec)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != 4 {
		t.Fatalf("pre-mutation session optimum %d, want 4", before.Size())
	}

	// Grow the graph object into a balanced K6: vertex 4 (a) joins the
	// K4, and a new b-vertex joins everything.
	g.AddEdge(0, 4)
	g.AddEdge(1, 4)
	g.AddEdge(2, 4)
	w := g.AddVertex(AttrB)
	for v := 0; v < w; v++ {
		g.AddEdge(v, w)
	}

	direct, err := Find(g, DefaultOptions(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Size() != 6 {
		t.Fatalf("post-mutation direct optimum %d, want 6", direct.Size())
	}

	after, err := s.Find(spec)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != 4 {
		t.Fatalf("session observed Graph mutation: optimum %d, want the snapshot's 4", after.Size())
	}
	if s.N() != 5 {
		t.Fatalf("session vertex count %d, want the snapshot's 5", s.N())
	}

	// The supported mutation path: the same growth through Apply is
	// observed, and matches the direct post-mutation answer.
	if _, err := s.Apply(Delta{
		AddVertices: []Attr{AttrB},
		AddEdges:    [][2]int{{0, 4}, {1, 4}, {2, 4}, {0, 5}, {1, 5}, {2, 5}, {3, 5}, {4, 5}},
	}); err != nil {
		t.Fatal(err)
	}
	applied, err := s.Find(spec)
	if err != nil {
		t.Fatal(err)
	}
	if applied.Size() != direct.Size() {
		t.Fatalf("Apply-mutated session optimum %d, direct %d", applied.Size(), direct.Size())
	}
}
