package fairclique

import (
	"testing"

	"fairclique/internal/bounds"
	"fairclique/internal/core"
	"fairclique/internal/enum"
	"fairclique/internal/gen"
	"fairclique/internal/heuristic"
	"fairclique/internal/reduce"
)

// Cross-module invariants on every dataset stand-in at small scale —
// the contracts the whole pipeline rests on, checked end to end rather
// than per package:
//
//  1. the reduction pipeline preserves the optimum,
//  2. the heuristic never beats the exact search and its UB never
//     undercuts it,
//  3. all bound configurations agree on the optimum,
//  4. the exact result is a valid fair clique in original ids.
func TestPipelineInvariantsOnAllDatasets(t *testing.T) {
	for _, d := range gen.Datasets() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			g := d.Build(0.08)
			k, delta := d.DefaultK, d.DefaultDelta

			exact, err := core.MaxRFC(g, core.Options{K: k, Delta: delta})
			if err != nil {
				t.Fatal(err)
			}
			// (4) validity.
			if exact.Clique != nil && !g.IsFairClique(exact.Clique, k, delta) {
				t.Fatal("exact result invalid")
			}
			// (1) reduction preserves the optimum.
			noRed, err := core.MaxRFC(g, core.Options{K: k, Delta: delta, SkipReduction: true})
			if err != nil {
				t.Fatal(err)
			}
			if noRed.Size() != exact.Size() {
				t.Fatalf("reduction changed optimum: %d vs %d", exact.Size(), noRed.Size())
			}
			// (2) heuristic bounds the optimum from both sides.
			h := heuristic.HeurRFC(g, int32(k), int32(delta))
			if len(h.Clique) > exact.Size() {
				t.Fatalf("heuristic %d beats exact %d", len(h.Clique), exact.Size())
			}
			if h.UB < int32(exact.Size()) {
				t.Fatalf("heuristic UB %d undercuts optimum %d", h.UB, exact.Size())
			}
			// (3) every bound configuration agrees.
			for _, extra := range bounds.Extras() {
				res, err := core.MaxRFC(g, core.Options{
					K: k, Delta: delta, UseBounds: true, Extra: extra, UseHeuristic: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Size() != exact.Size() {
					t.Fatalf("%s: optimum %d vs %d", extra, res.Size(), exact.Size())
				}
			}
			// The reduction's survivors must contain the whole optimum.
			sub, _ := reduce.Pipeline(g, int32(k))
			inSub := map[int32]bool{}
			for _, orig := range sub.ToParent {
				inSub[orig] = true
			}
			for _, v := range exact.Clique {
				if !inSub[v] {
					t.Fatalf("reduction dropped optimum vertex %d", v)
				}
			}
		})
	}
}

// The enumeration baseline agrees with the search on a mid-size
// stand-in (the strongest end-to-end equivalence this repo can check
// in test time).
func TestSearchMatchesEnumerationOnDataset(t *testing.T) {
	d, _ := gen.DatasetByName("dblp-sim")
	g := d.Build(0.05)
	for _, kd := range [][2]int{{3, 2}, {4, 3}} {
		k, delta := kd[0], kd[1]
		want := len(enum.MaxFairClique(g, k, delta))
		res, err := core.MaxRFC(g, core.Options{K: k, Delta: delta, UseBounds: true, UseHeuristic: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Size() != want {
			t.Fatalf("k=%d δ=%d: search %d, enumeration %d", k, delta, res.Size(), want)
		}
	}
}
