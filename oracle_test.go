package fairclique

import (
	"math/bits"
	"testing"

	"fairclique/internal/rng"
)

// This file is the suite's ground-truth oracle: an exhaustive subset
// enumeration written from the Definition 1 text alone — no shared
// code with the engine, the enumeration baseline or the reduction
// pipeline — so an agreement here is engine-vs-truth, not
// engine-vs-engine.

// bruteForce enumerates all 2^n vertex subsets of g (n <= 18) and
// returns, for every attribute-count pair (na, nb) realized by at
// least one clique, a witness clique. Fairness constraints are applied
// by the caller on top.
type bruteForce struct {
	n       int
	witness map[[2]int][]int // (na, nb) -> one clique with those counts
}

func newBruteForce(t *testing.T, g *Graph) *bruteForce {
	t.Helper()
	n := g.N()
	if n > 18 {
		t.Fatalf("oracle fixture has %d vertices; the exhaustive oracle caps at 18", n)
	}
	adj := make([]uint32, n)
	attrA := uint32(0)
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			adj[v] |= 1 << uint(w)
		}
		if g.Attr(v) == AttrA {
			attrA |= 1 << uint(v)
		}
	}
	bf := &bruteForce{n: n, witness: make(map[[2]int][]int)}
	for s := uint32(0); s < 1<<uint(n); s++ {
		// Clique test: every member must be adjacent to all others.
		ok := true
		for m := s; m != 0; m &= m - 1 {
			v := bits.TrailingZeros32(m)
			if s&^(1<<uint(v))&^adj[v] != 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		na := bits.OnesCount32(s & attrA)
		nb := bits.OnesCount32(s &^ attrA)
		key := [2]int{na, nb}
		if _, seen := bf.witness[key]; !seen {
			verts := make([]int, 0, na+nb)
			for m := s; m != 0; m &= m - 1 {
				verts = append(verts, bits.TrailingZeros32(m))
			}
			bf.witness[key] = verts
		}
	}
	return bf
}

// opt returns the true maximum (k, δ)-relative fair clique size and a
// witness (nil when no fair clique exists). δ < 0 encodes the weak
// model (no balance constraint).
func (bf *bruteForce) opt(k, delta int) (int, []int) {
	best, bestKey := 0, [2]int{-1, -1}
	for key := range bf.witness {
		na, nb := key[0], key[1]
		if na < k || nb < k {
			continue
		}
		if delta >= 0 {
			diff := na - nb
			if diff < 0 {
				diff = -diff
			}
			if diff > delta {
				continue
			}
		}
		if na+nb > best {
			best, bestKey = na+nb, key
		}
	}
	if best == 0 {
		return 0, nil
	}
	return best, bf.witness[bestKey]
}

// Find, Session.Find and IsFairClique must all agree with the
// exhaustive ground truth on the maximum weak, strong and relative
// fair cliques of small random graphs.
func TestBruteForceOracleAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive oracle in -short mode")
	}
	densities := []float64{0.3, 0.5, 0.7}
	for seed := uint64(0); seed < 6; seed++ {
		n := 13 + int(seed)%6 // 13..18 vertices
		g := buildRandom(seed+900, n, densities[seed%3])
		bf := newBruteForce(t, g)
		s := NewSession(g)
		for k := 1; k <= 3; k++ {
			cases := []struct {
				name  string
				delta int // as passed to IsFairClique; -1 = weak
				spec  QuerySpec
			}{
				{"strong", 0, QuerySpec{K: k, Mode: ModeStrong}},
				{"weak", -1, QuerySpec{K: k, Mode: ModeWeak}},
				{"relative-d1", 1, QuerySpec{K: k, Delta: 1}},
				{"relative-d2", 2, QuerySpec{K: k, Delta: 2}},
			}
			for _, tc := range cases {
				want, witness := bf.opt(k, tc.delta)
				isDelta := tc.delta
				if isDelta < 0 {
					isDelta = n // weak = relative with δ = |V|
				}
				// The oracle's own witness must pass IsFairClique —
				// truth and the public validity check agree.
				if witness != nil && !g.IsFairClique(witness, k, isDelta) {
					t.Fatalf("seed=%d k=%d %s: IsFairClique rejects the oracle witness %v",
						seed, k, tc.name, witness)
				}
				// One-shot engine.
				find := independentFind(t, g, tc.spec, UBColorfulDegeneracy)
				if find.Size() != want {
					t.Fatalf("seed=%d k=%d %s: Find %d, oracle %d",
						seed, k, tc.name, find.Size(), want)
				}
				if want > 0 && !g.IsFairClique(find.Clique, k, isDelta) {
					t.Fatalf("seed=%d k=%d %s: Find clique invalid", seed, k, tc.name)
				}
				// Warm session engine.
				sres, err := s.Find(tc.spec)
				if err != nil {
					t.Fatal(err)
				}
				if sres.Size() != want {
					t.Fatalf("seed=%d k=%d %s: Session.Find %d, oracle %d",
						seed, k, tc.name, sres.Size(), want)
				}
				if want > 0 && !g.IsFairClique(sres.Clique, k, isDelta) {
					t.Fatalf("seed=%d k=%d %s: Session clique invalid", seed, k, tc.name)
				}
			}
		}
	}
}

// IsFairClique itself differentially tested against a from-scratch
// check on random vertex subsets (clique-ness via HasEdge, counts via
// Attr) — the validity predicate the whole differential wall leans on
// must match first principles.
func TestIsFairCliqueMatchesFirstPrinciples(t *testing.T) {
	r := rng.New(77)
	for seed := uint64(0); seed < 4; seed++ {
		g := buildRandom(seed+300, 16, 0.5)
		n := g.N()
		for trial := 0; trial < 200; trial++ {
			size := 1 + r.Intn(6)
			verts := r.Sample(n, size)
			k := 1 + r.Intn(3)
			delta := r.Intn(3)

			clique := true
			for i := 0; i < len(verts) && clique; i++ {
				for j := i + 1; j < len(verts); j++ {
					if !g.HasEdge(verts[i], verts[j]) {
						clique = false
						break
					}
				}
			}
			na, nb := 0, 0
			for _, v := range verts {
				if g.Attr(v) == AttrA {
					na++
				} else {
					nb++
				}
			}
			diff := na - nb
			if diff < 0 {
				diff = -diff
			}
			want := clique && na >= k && nb >= k && diff <= delta
			if got := g.IsFairClique(verts, k, delta); got != want {
				t.Fatalf("seed=%d trial=%d verts=%v k=%d δ=%d: IsFairClique=%v, first principles=%v",
					seed, trial, verts, k, delta, got, want)
			}
		}
	}
}

// The exhaustive oracle, interleaved with graph deltas: after every
// random Apply the warm session must still agree with a from-scratch
// 2^n ground truth computed on the test's own mirror of the mutated
// graph — weak, strong and relative modes alike.
func TestBruteForceOracleAfterApply(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive oracle in -short mode")
	}
	r := rng.New(4242)
	for seed := uint64(0); seed < 4; seed++ {
		g := buildRandom(seed+1300, 14, 0.45)
		m := newGraphModel(g)
		s := NewSession(g)
		// Warm queries before the first delta.
		if _, err := s.FindGrid([]QuerySpec{{K: 1, Delta: 1}, {K: 2, Delta: 0}, {K: 2, Mode: ModeWeak}}); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			var d Delta
			// Keep n <= 18 for the oracle: edges only.
			for i := 0; i < 1+r.Intn(3); i++ {
				u, v := r.Intn(14), r.Intn(14)
				if u != v {
					d.AddEdges = append(d.AddEdges, [2]int{u, v})
				}
			}
			var existing [][2]int
			for e := range m.edges {
				existing = append(existing, e)
			}
			for i := 0; i < r.Intn(3) && len(existing) > 0; i++ {
				e := existing[r.Intn(len(existing))]
				clash := false
				for _, a := range d.AddEdges {
					if (a[0] == e[0] && a[1] == e[1]) || (a[0] == e[1] && a[1] == e[0]) {
						clash = true
					}
				}
				if !clash {
					d.DelEdges = append(d.DelEdges, e)
				}
			}
			if _, err := s.Apply(d); err != nil {
				t.Fatal(err)
			}
			m.apply(d)
			fresh := m.build()
			bf := newBruteForce(t, fresh)
			for k := 1; k <= 2; k++ {
				for _, tc := range []struct {
					name  string
					delta int // -1 = weak
					spec  QuerySpec
				}{
					{"strong", 0, QuerySpec{K: k, Mode: ModeStrong}},
					{"weak", -1, QuerySpec{K: k, Mode: ModeWeak}},
					{"relative-d1", 1, QuerySpec{K: k, Delta: 1}},
				} {
					want, _ := bf.opt(k, tc.delta)
					got, err := s.Find(tc.spec)
					if err != nil {
						t.Fatal(err)
					}
					if got.Size() != want {
						t.Fatalf("seed=%d round=%d k=%d %s: post-Apply Session.Find %d, oracle %d",
							seed, round, k, tc.name, got.Size(), want)
					}
					isDelta := tc.delta
					if isDelta < 0 {
						isDelta = fresh.N()
					}
					if want > 0 && !fresh.IsFairClique(got.Clique, k, isDelta) {
						t.Fatalf("seed=%d round=%d k=%d %s: post-Apply clique invalid", seed, round, k, tc.name)
					}
				}
			}
		}
	}
}
