module fairclique

go 1.24.0
