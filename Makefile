# Developer entry points. The repo is plain `go build ./...`-able; the
# targets below bundle the verification and benchmarking recipes.

GO ?= go

.PHONY: build test race bench bench-full

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine's parallel paths under the race detector.
race:
	$(GO) test -race ./internal/core ./internal/bounds

# Regenerate BENCH_core.json: nodes/sec, allocs/node and the Workers
# 1-vs-4 wall-clock comparison of the branch-and-bound engine on a
# single-giant-component graph. Future engine PRs compare against the
# committed record.
bench:
	$(GO) run ./cmd/benchmark -exp core -out BENCH_core.json
	@cat BENCH_core.json

# The full paper-evaluation suite (slow; writes Markdown to stdout).
bench-full:
	$(GO) run ./cmd/benchmark -exp all -scale 0.5
