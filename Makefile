# Developer entry points. The repo is plain `go build ./...`-able; the
# targets below bundle the verification and benchmarking recipes.

GO ?= go
# BENCH_SCALE shrinks the benchmark instance (CI smoke runs use 0.25;
# a non-1.0 scale changes the instance, so the regression gate reports
# and skips instead of comparing incomparable numbers).
BENCH_SCALE ?= 1.0
# BENCH_OUT_DIR receives the fresh records of bench-check and
# bench-parallel. Parallel CI jobs give each invocation its own
# directory so they cannot clobber each other's records (the old fixed
# /tmp/BENCH_*.new.json paths collided).
BENCH_OUT_DIR ?= /tmp
# MIN_SPEEDUP gates bench-parallel and bench-ingest: the measured W4/W1
# speedup must strictly exceed it (0 disables the gate; CI runs 1.0 on
# the multi-core runner).
MIN_SPEEDUP ?= 0
# MEM_RATIO gates bench-ingest: the streaming builder's deterministic
# peak must stay under this multiple of the final CSR bytes (0 disables
# the gate; CI runs 2.0 — "never hold the edge list and the CSR
# twice"). Unlike the speedup gate it is enforceable on any machine.
MEM_RATIO ?= 0
# SPEC selects the sched experiment's headline speculation mode (the
# on/off ablation is recorded either way); WORKERS_CURVE its scaling
# curve points.
SPEC ?= on
WORKERS_CURVE ?= 1,2,4,8

.PHONY: build test test-race race bench bench-check bench-parallel bench-ingest bench-full serve-smoke apidiff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine's parallel paths — root split, subtree work donation, the
# chunked-row kernels, the session's concurrent grid, the serve layer
# (registry, write buffer, cache, admission gate) and the public
# Graph's lazy freeze — under the race detector. The root package runs
# only its concurrency hammers (the oracle suites are too slow for
# -race and have no shared state to race on).
test-race:
	$(GO) test -race ./internal/core ./internal/bounds ./internal/graph ./internal/session ./internal/reduce ./internal/sched ./internal/serve ./internal/enum
	$(GO) test -race -run 'Concurrent|SnapshotVsApply' .

race: test-race

# Regenerate BENCH_core.json: nodes/sec, allocs/node and the Workers
# 1-vs-4 wall-clock comparison of the branch-and-bound engine on the
# >4096-vertex single-component instance (chunked candidate rows), plus
# the multi-query session experiment (9-cell grid, amortized vs
# independent) embedded under "grid", the dynamic-session experiment
# (single-edge Apply+requery vs NewSession+requery) embedded under
# "delta", and the session-global scheduler experiment (grid serial vs
# static split vs shared work-stealing pool) embedded under "sched",
# and the paper-scale ingest experiment (streaming CSR build from SNAP
# text, degeneracy pre-prune, component-parallel reduction on the
# ~2.2M-edge IngestGiant instance) embedded under "ingest", and the
# daemon load experiment (concurrent clients against the in-process
# serve handler — qps, p50/p99, cache hit rate, epoch churn) embedded
# under "serve", and the anytime experiment (the gap-vs-budget curve:
# deadline runs at fractions of the exact wall clock with certified
# optimality gaps; hard-fails if a zero-deadline run reports inexact
# or any budgeted run breaks the incumbent <= optimum <= certificate
# sandwich) embedded under "anytime".
# Future engine PRs compare against the committed record (bench-check).
bench:
	$(GO) run ./cmd/benchmark -exp core -out BENCH_core.json
	$(GO) run ./cmd/benchmark -exp grid -merge BENCH_core.json -out /dev/null
	$(GO) run ./cmd/benchmark -exp delta -merge BENCH_core.json -out /dev/null
	$(GO) run ./cmd/benchmark -exp sched -spec $(SPEC) -workers-curve $(WORKERS_CURVE) -merge BENCH_core.json -out /dev/null
	$(GO) run ./cmd/benchmark -exp ingest -merge BENCH_core.json -out /dev/null
	$(GO) run ./cmd/benchmark -exp serve -merge BENCH_core.json -out /dev/null
	$(GO) run ./cmd/benchmark -exp anytime -merge BENCH_core.json -out /dev/null
	$(GO) run ./cmd/benchmark -exp enum -min-speedup 5 -merge BENCH_core.json -out /dev/null
	@cat BENCH_core.json

# Re-measure and diff against the committed BENCH_core.json: prints a
# per-workers delta table and fails loudly when nodes/sec regresses by
# more than 10% on the same instance. The grid and delta experiments
# hard-fail when a session answer diverges from its independent run.
# CI uploads the fresh records as a workflow artifact (see ci.yml).
bench-check:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) run ./cmd/benchmark -exp core -scale $(BENCH_SCALE) -baseline BENCH_core.json -out $(BENCH_OUT_DIR)/BENCH_core.new.json
	$(GO) run ./cmd/benchmark -exp grid -scale $(BENCH_SCALE) -out $(BENCH_OUT_DIR)/BENCH_grid.new.json
	$(GO) run ./cmd/benchmark -exp delta -scale $(BENCH_SCALE) -out $(BENCH_OUT_DIR)/BENCH_delta.new.json

# Measure the session-global scheduler: the same grid serial (W1),
# statically split (W4) and on the session-lifetime shared pool (W4),
# plus the WORKERS_CURVE scaling curve and the speculation on/off
# ablation at W4. With MIN_SPEEDUP > 0 the run exits 1 unless the
# shared-pool W4/W1 speedup strictly exceeds it — the CI parallel gate
# (requires a multi-core machine; committed BENCH records are from
# 1-CPU containers where the ratio is ~1.0 by construction).
bench-parallel:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) run ./cmd/benchmark -exp sched -scale $(BENCH_SCALE) -spec $(SPEC) -workers-curve $(WORKERS_CURVE) -min-speedup $(MIN_SPEEDUP) -out $(BENCH_OUT_DIR)/BENCH_sched.new.json

# The paper-scale ingest pipeline: stream the SNAP text of the
# IngestGiant instance into a CSR, degeneracy-prune it at the fairness
# floor, reduce serial vs component-parallel, and answer the planted
# query. The generated SNAP pair is cached under
# $(BENCH_OUT_DIR)/instance (the CI job caches that directory between
# runs). MEM_RATIO > 0 hard-fails when the builder's deterministic peak
# reaches that multiple of the final CSR bytes; MIN_SPEEDUP > 0
# hard-fails unless parallel reduction beats serial (multi-core only).
bench-ingest:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) run ./cmd/benchmark -exp ingest -scale $(BENCH_SCALE) -min-speedup $(MIN_SPEEDUP) -max-mem-ratio $(MEM_RATIO) -graph-dir $(BENCH_OUT_DIR)/instance -out $(BENCH_OUT_DIR)/BENCH_ingest.new.json

# Boot the real mfcd binary on a random port and walk every endpoint
# with curl: upload, rejected garbage, query (fresh + cached), grid,
# buffered mutation + flush barrier, metrics, blacklist, delete. Hard
# fails on any unexpected status and on the differential check (a
# graph mutated through deltas must answer exactly like the same graph
# uploaded fresh). The transcript lands in
# $(BENCH_OUT_DIR)/serve-smoke/smoke.log (a CI artifact).
serve-smoke:
	@mkdir -p $(BENCH_OUT_DIR)/serve-smoke
	OUT_DIR=$(BENCH_OUT_DIR)/serve-smoke sh scripts/serve_smoke.sh

# The API-compatibility gate: diff the public fairclique package's
# exported surface against the previous commit with apidiff, failing
# on incompatible changes unless an `api-break` file at the repo root
# acknowledges them (see scripts/apidiff.sh). Skips gracefully when
# the tool is not installed; CI installs golang.org/x/exp/cmd/apidiff
# on the runner and pins the base to the PR's base commit.
apidiff:
	sh scripts/apidiff.sh

# The full paper-evaluation suite (slow; writes Markdown to stdout).
bench-full:
	$(GO) run ./cmd/benchmark -exp all -scale 0.5
