# Developer entry points. The repo is plain `go build ./...`-able; the
# targets below bundle the verification and benchmarking recipes.

GO ?= go

.PHONY: build test test-race race bench bench-check bench-full

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine's parallel paths — root split, subtree work donation and
# the chunked-row kernels — under the race detector.
test-race:
	$(GO) test -race ./internal/core ./internal/bounds ./internal/graph

race: test-race

# Regenerate BENCH_core.json: nodes/sec, allocs/node and the Workers
# 1-vs-4 wall-clock comparison of the branch-and-bound engine on the
# >4096-vertex single-component instance (chunked candidate rows).
# Future engine PRs compare against the committed record (bench-check).
bench:
	$(GO) run ./cmd/benchmark -exp core -out BENCH_core.json
	@cat BENCH_core.json

# Re-measure and diff against the committed BENCH_core.json: prints a
# per-workers delta table and fails loudly when nodes/sec regresses by
# more than 10% on the same instance.
bench-check:
	$(GO) run ./cmd/benchmark -exp core -baseline BENCH_core.json -out /tmp/BENCH_core.new.json

# The full paper-evaluation suite (slow; writes Markdown to stdout).
bench-full:
	$(GO) run ./cmd/benchmark -exp all -scale 0.5
