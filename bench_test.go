// Repository-level benchmarks: one benchmark per table and figure of
// the paper's evaluation (§VI), regenerating the corresponding
// experiment on the synthetic dataset stand-ins. Per-figure experiment
// benches run the harness at benchScale; the fine-grained benches below
// them time individual algorithm configurations per dataset, which is
// what the paper's tables actually compare.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or print the paper-style tables with cmd/benchmark.
package fairclique_test

import (
	"testing"

	"fairclique"
	"fairclique/internal/bench"
	"fairclique/internal/bounds"
	"fairclique/internal/core"
	"fairclique/internal/gen"
	"fairclique/internal/heuristic"
	"fairclique/internal/reduce"
)

// benchScale keeps the full -bench=. sweep in the minutes range; use
// cmd/benchmark -scale 1.0 for the full-size tables.
const benchScale = 0.2

var benchCfg = bench.Config{Scale: benchScale, MaxNodes: 50_000_000}

// BenchmarkTableI_DatasetBuild measures dataset construction, the
// substrate behind every experiment (Table I).
func BenchmarkTableI_DatasetBuild(b *testing.B) {
	for _, d := range gen.Datasets() {
		b.Run(d.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := d.Build(benchScale)
				if g.N() == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkFig4_Reduction times the full reduction pipeline per
// generated-attribute dataset at its default k (Fig. 4's workload).
func BenchmarkFig4_Reduction(b *testing.B) {
	for _, d := range gen.Datasets() {
		if d.Name == "aminer-sim" {
			continue
		}
		g := d.Build(benchScale)
		b.Run(d.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reduce.Stages(g, int32(d.DefaultK))
			}
		})
	}
}

// BenchmarkFig5_ReductionRealAttrs is Fig. 4's workload on the
// correlated-attribute stand-in (Fig. 5).
func BenchmarkFig5_ReductionRealAttrs(b *testing.B) {
	d, _ := gen.DatasetByName("aminer-sim")
	g := d.Build(benchScale)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reduce.Stages(g, int32(d.DefaultK))
	}
}

// BenchmarkTable2_UpperBounds times MaxRFC under each of the six bound
// configurations per dataset at default parameters (Table II's cells).
func BenchmarkTable2_UpperBounds(b *testing.B) {
	for _, d := range gen.Datasets() {
		g := d.Build(benchScale)
		for _, extra := range bounds.Extras() {
			b.Run(d.Name+"/"+extra.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := core.MaxRFC(g, core.Options{
						K: d.DefaultK, Delta: d.DefaultDelta,
						UseBounds: true, Extra: extra,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6_SearchVariants times the paper's three algorithm
// flavours per generated-attribute dataset (Fig. 6's series).
func BenchmarkFig6_SearchVariants(b *testing.B) {
	variants := []struct {
		name string
		opt  func(d *gen.Dataset) core.Options
	}{
		{"MaxRFC", func(d *gen.Dataset) core.Options {
			return core.Options{K: d.DefaultK, Delta: d.DefaultDelta}
		}},
		{"MaxRFC+ub", func(d *gen.Dataset) core.Options {
			return core.Options{K: d.DefaultK, Delta: d.DefaultDelta, UseBounds: true, Extra: bounds.ColorfulDegeneracy}
		}},
		{"MaxRFC+ub+HeurRFC", func(d *gen.Dataset) core.Options {
			return core.Options{K: d.DefaultK, Delta: d.DefaultDelta, UseBounds: true, Extra: bounds.ColorfulDegeneracy, UseHeuristic: true}
		}},
	}
	for _, d := range gen.Datasets() {
		if d.Name == "aminer-sim" {
			continue
		}
		g := d.Build(benchScale)
		for _, v := range variants {
			b.Run(d.Name+"/"+v.name, func(b *testing.B) {
				opt := v.opt(d)
				for i := 0; i < b.N; i++ {
					if _, err := core.MaxRFC(g, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7_SearchRealAttrs is Fig. 6's workload on aminer-sim.
func BenchmarkFig7_SearchRealAttrs(b *testing.B) {
	d, _ := gen.DatasetByName("aminer-sim")
	g := d.Build(benchScale)
	for _, v := range []struct {
		name     string
		ub, heur bool
	}{{"MaxRFC", false, false}, {"MaxRFC+ub", true, false}, {"MaxRFC+ub+HeurRFC", true, true}} {
		b.Run(v.name, func(b *testing.B) {
			opt := core.Options{K: d.DefaultK, Delta: d.DefaultDelta,
				UseBounds: v.ub, Extra: bounds.ColorfulDegeneracy, UseHeuristic: v.heur}
			for i := 0; i < b.N; i++ {
				if _, err := core.MaxRFC(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8_Heuristic times the linear-time HeurRFC per dataset
// (the cheap half of Fig. 8's comparison).
func BenchmarkFig8_Heuristic(b *testing.B) {
	for _, d := range gen.Datasets() {
		g := d.Build(benchScale)
		b.Run(d.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				heuristic.HeurRFC(g, int32(d.DefaultK), int32(d.DefaultDelta))
			}
		})
	}
}

// BenchmarkFig9_Scalability runs the full Fig. 9 sweep (20-100% vertex
// and edge subsamples of flixster-sim, three variants each).
func BenchmarkFig9_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig9(benchCfg)
	}
}

// BenchmarkFig10_CaseStudies runs the four labelled case-study queries
// (Fig. 10) end to end.
func BenchmarkFig10_CaseStudies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RunCaseStudies(benchCfg)
	}
}

// BenchmarkFindPublicAPI exercises the public entry point end-to-end
// on a mid-size stand-in, the number a library user would experience.
func BenchmarkFindPublicAPI(b *testing.B) {
	d, _ := gen.DatasetByName("dblp-sim")
	ig := d.Build(benchScale)
	g := fairclique.NewGraph(int(ig.N()))
	for v := int32(0); v < ig.N(); v++ {
		g.SetAttr(int(v), ig.Attr(v))
	}
	for e := int32(0); e < ig.M(); e++ {
		u, v := ig.Edge(e)
		g.AddEdge(int(u), int(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairclique.Find(g, fairclique.DefaultOptions(d.DefaultK, d.DefaultDelta)); err != nil {
			b.Fatal(err)
		}
	}
}
