package fairclique

import (
	"testing"

	"fairclique/internal/rng"
)

// graphModel is the test's own ground-truth mirror of a dynamic
// session's graph: attributes and an edge set maintained from first
// principles, with no shared code with graph.ApplyDelta. Rebuilding a
// fresh Graph from the model after every delta is what makes the
// differential test engine-vs-truth for the mutation layer too.
type graphModel struct {
	attrs []Attr
	edges map[[2]int]bool
}

func newGraphModel(g *Graph) *graphModel {
	m := &graphModel{edges: make(map[[2]int]bool)}
	for v := 0; v < g.N(); v++ {
		m.attrs = append(m.attrs, g.Attr(v))
		for _, w := range g.Neighbors(v) {
			if v < w {
				m.edges[[2]int{v, w}] = true
			}
		}
	}
	return m
}

func (m *graphModel) apply(d Delta) {
	for _, v := range d.DelVertices {
		for e := range m.edges {
			if e[0] == v || e[1] == v {
				delete(m.edges, e)
			}
		}
	}
	for _, e := range d.DelEdges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		delete(m.edges, [2]int{u, v})
	}
	m.attrs = append(m.attrs, d.AddVertices...)
	for _, e := range d.AddEdges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		m.edges[[2]int{u, v}] = true
	}
}

func (m *graphModel) build() *Graph {
	g := NewGraph(len(m.attrs))
	for v, a := range m.attrs {
		g.SetAttr(v, a)
	}
	for e := range m.edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// randomPublicDelta draws a delta valid for the model: inserts,
// deletes, and occasionally new vertices (wired by later inserts).
func randomPublicDelta(r *rng.RNG, m *graphModel) Delta {
	var d Delta
	n := len(m.attrs)
	for i := 0; i < r.Intn(2); i++ {
		d.AddVertices = append(d.AddVertices, Attr(r.Intn(2)))
	}
	newN := n + len(d.AddVertices)
	for i := 0; i < 1+r.Intn(4); i++ {
		u, v := r.Intn(newN), r.Intn(newN)
		if u != v {
			d.AddEdges = append(d.AddEdges, [2]int{u, v})
		}
	}
	var existing [][2]int
	for e := range m.edges {
		existing = append(existing, e)
	}
	for i := 0; i < r.Intn(4) && len(existing) > 0; i++ {
		e := existing[r.Intn(len(existing))]
		clash := false
		for _, a := range d.AddEdges {
			if (a[0] == e[0] && a[1] == e[1]) || (a[0] == e[1] && a[1] == e[0]) {
				clash = true
			}
		}
		if !clash {
			d.DelEdges = append(d.DelEdges, e)
		}
	}
	return d
}

// The dynamic differential wall at the public API: interleave random
// Apply deltas with grid queries and assert every post-delta
// Session.Find equals a Find on a from-scratch graph rebuilt by the
// test's own mirror — across all six Table II bound configs and the
// weak and strong modes.
func TestDynamicSessionMatchesFreshFindAllBounds(t *testing.T) {
	r := rng.New(77001)
	for seed := uint64(0); seed < 6; seed++ {
		bound := allBoundConfigs[seed%6]
		g := buildRandom(seed+400, 22+int(seed%3)*5, 0.35)
		m := newGraphModel(g)
		s := NewSession(g, SessionOptions{Bound: bound})
		var specs []QuerySpec
		for k := 1; k <= 3; k++ {
			specs = append(specs,
				QuerySpec{K: k, Delta: 0},
				QuerySpec{K: k, Delta: 2},
				QuerySpec{K: k, Mode: ModeWeak},
				QuerySpec{K: k, Mode: ModeStrong})
		}
		// Warm grid before the first delta.
		if _, err := s.FindGrid(specs); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			d := randomPublicDelta(r, m)
			if _, err := s.Apply(d); err != nil {
				t.Fatal(err)
			}
			m.apply(d)
			fresh := m.build()
			if s.N() != fresh.N() {
				t.Fatalf("seed=%d round=%d: session has %d vertices, mirror %d", seed, round, s.N(), fresh.N())
			}
			for _, spec := range specs {
				got, err := s.Find(spec)
				if err != nil {
					t.Fatal(err)
				}
				want := independentFind(t, fresh, spec, bound)
				if got.Size() != want.Size() {
					t.Fatalf("seed=%d round=%d bound=%v spec=%+v: session %d, fresh %d",
						seed, round, bound, spec, got.Size(), want.Size())
				}
				if got.Size() > 0 {
					delta := spec.Delta
					switch spec.Mode {
					case ModeWeak:
						delta = fresh.N()
					case ModeStrong:
						delta = 0
					}
					if !fresh.IsFairClique(got.Clique, spec.K, delta) {
						t.Fatalf("seed=%d round=%d spec=%+v: session clique invalid on the mutated graph",
							seed, round, spec)
					}
					if !got.Exact {
						t.Fatalf("seed=%d round=%d spec=%+v: inexact without MaxNodes", seed, round, spec)
					}
				}
			}
		}
		// The interleaved rounds must actually exercise the dynamic
		// machinery, not rebuild everything.
		st := s.Stats()
		if st.Applies != 4 || st.Epoch != 4 {
			t.Fatalf("seed=%d: applies/epoch = %d/%d, want 4/4", seed, st.Applies, st.Epoch)
		}
	}
}

// The invalidation stats must prove reuse on a structured instance:
// one delta-touched component among several leaves the others' state
// adopted, and the whole-grid requery after a far-away deletion is
// answered without branching.
func TestDynamicSessionStatsShowReuse(t *testing.T) {
	// Two disjoint balanced K8s.
	g := NewGraph(16)
	for v := 0; v < 16; v++ {
		g.SetAttr(v, Attr(v%2))
	}
	for base := 0; base < 16; base += 8 {
		for u := base; u < base+8; u++ {
			for v := u + 1; v < base+8; v++ {
				g.AddEdge(u, v)
			}
		}
	}
	// Without the heuristic the incumbent starts empty, so the first
	// component is genuinely branched (and its machinery built); with
	// it, HeurRFC would seed the full K8 and the size prune would skip
	// every component before building anything.
	s := NewSession(g, SessionOptions{DisableHeuristic: true})
	if _, err := s.Find(QuerySpec{K: 2, Delta: 6}); err != nil {
		t.Fatal(err)
	}
	ast, err := s.Apply(Delta{DelEdges: [][2]int{{8, 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if ast.CompPrepsReused < 1 {
		t.Fatalf("no component machinery adopted: %+v", ast)
	}
	st := s.Stats()
	if st.CompPrepsReused < 1 || st.Applies != 1 {
		t.Fatalf("session stats miss the adoption: %+v", st)
	}
	nodesBefore := st.Nodes
	res, err := s.Find(QuerySpec{K: 2, Delta: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 8 {
		t.Fatalf("post-delta optimum %d, want 8 (the untouched K8)", res.Size())
	}
	st = s.Stats()
	if st.Nodes != nodesBefore {
		t.Fatalf("deletion-only requery branched %d nodes; retained bound+seed should answer it",
			st.Nodes-nodesBefore)
	}
}
