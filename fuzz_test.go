package fairclique

import (
	"bytes"
	"strings"
	"testing"

	"fairclique/internal/rng"
)

// FuzzFind decodes arbitrary bytes into a small attributed graph plus
// (k, δ) parameters and cross-checks the branch-and-bound against the
// Bron–Kerbosch enumeration. Run with `go test -fuzz=FuzzFind`; the
// seed corpus alone already covers the interesting degenerate shapes.
func FuzzFind(f *testing.F) {
	f.Add([]byte{0}, uint8(1), uint8(0))
	f.Add([]byte{0xff, 0x01, 0x80, 0x7f}, uint8(2), uint8(1))
	f.Add([]byte("fairclique"), uint8(1), uint8(3))
	f.Add(bytes.Repeat([]byte{0xaa}, 24), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, k8, d8 uint8) {
		if len(data) == 0 {
			return
		}
		k := int(k8%4) + 1
		delta := int(d8 % 5)
		// Decode: first byte picks n in [2, 12]; remaining bytes are a
		// bit stream over the upper-triangular adjacency matrix, and a
		// derived PRNG assigns attributes.
		n := int(data[0]%11) + 2
		g := NewGraph(n)
		r := rng.New(uint64(len(data))*1315423911 + uint64(data[0]))
		for v := 0; v < n; v++ {
			g.SetAttr(v, Attr(r.Intn(2)))
		}
		bit := 0
		byteAt := func(i int) byte {
			if len(data) <= 1 {
				return 0
			}
			return data[1+i%(len(data)-1)]
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if byteAt(bit/8)>>(uint(bit)%8)&1 == 1 {
					g.AddEdge(u, v)
				}
				bit++
			}
		}
		want, err := FindExhaustive(g, k, delta)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Find(g, DefaultOptions(k, delta))
		if err != nil {
			t.Fatal(err)
		}
		if res.Size() != len(want) {
			t.Fatalf("n=%d k=%d δ=%d: Find=%d Enumerate=%d", n, k, delta, res.Size(), len(want))
		}
		if res.Size() > 0 && !g.IsFairClique(res.Clique, k, delta) {
			t.Fatalf("Find returned a non-fair-clique %v", res.Clique)
		}
	})
}

// FuzzReadGraph feeds arbitrary text to the parser: it must either
// error cleanly or produce a graph that round-trips.
func FuzzReadGraph(f *testing.F) {
	f.Add("v 0 a\nv 1 b\ne 0 1\n")
	f.Add("# comment\n0 1\n1 2\n")
	f.Add("e 0 0\n")
	f.Add("v 5 b\n")
	f.Add("")
	f.Add("garbage here\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<12 {
			return
		}
		g, err := ReadGraph(strings.NewReader(input))
		if err != nil {
			return // clean rejection is fine
		}
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		h, err := ReadGraph(&buf)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round trip changed size: %d/%d -> %d/%d", g.N(), g.M(), h.N(), h.M())
		}
	})
}
