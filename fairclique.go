// Package fairclique finds maximum relative fair cliques in attributed
// graphs, reproducing "Efficient Maximum Fair Clique Search over Large
// Networks" (Zhang, Li, Zheng, Qin, Yuan, Wang — ICDE 2025,
// arXiv:2312.04088).
//
// A (k, δ)-relative fair clique of a graph whose vertices carry one of
// two attributes is a clique with at least k vertices of each attribute
// whose attribute counts differ by at most δ. This package exposes:
//
//   - Graph construction (NewGraph / builder methods, text IO),
//   - Find: the exact MaxRFC branch-and-bound with the paper's
//     reduction pipeline, upper bounds and heuristic seeding,
//   - NewSession: a prepared multi-query engine that prepares the
//     graph once and answers a grid of (k, δ, mode) queries with
//     shared preprocessing and cross-query warm-starts; Session.Apply
//     mutates the graph with batched edge/vertex deltas, invalidating
//     only the components the delta touches,
//   - Enumerate / Session.Enumerate: every maximum fair clique of a
//     cell (or a diversified top-r subset) as a ResultSet, computed by
//     the same branch-and-bound engine in collect-at-optimum mode and
//     maintained incrementally across Session.Apply deltas,
//   - Heuristic: the linear-time HeurRFC approximation,
//   - Reduce: the colorful-support reduction pipeline on its own,
//   - FindExhaustive: the Bron–Kerbosch baseline (deprecated; kept as
//     the validation oracle).
//
// # Quick start
//
//	g := fairclique.NewGraph(4)
//	g.SetAttr(0, fairclique.AttrA)
//	g.SetAttr(1, fairclique.AttrA)
//	g.SetAttr(2, fairclique.AttrB)
//	g.SetAttr(3, fairclique.AttrB)
//	for u := 0; u < 4; u++ {
//		for v := u + 1; v < 4; v++ {
//			g.AddEdge(u, v)
//		}
//	}
//	res, err := fairclique.Find(g, fairclique.Options{K: 2, Delta: 0})
//	// res.Clique == [0 1 2 3]
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the system inventory and the documented corrections to the paper's
// pseudo-code.
package fairclique

import (
	"fmt"
	"io"
	"sync"
	"time"

	"fairclique/internal/bounds"
	"fairclique/internal/core"
	"fairclique/internal/enum"
	"fairclique/internal/graph"
	"fairclique/internal/heuristic"
	"fairclique/internal/reduce"
	"fairclique/internal/session"
)

// Attr is a binary vertex attribute; the paper's A = {a, b}.
type Attr = graph.Attr

// Attribute values.
const (
	AttrA = graph.AttrA
	AttrB = graph.AttrB
)

// UpperBound selects the extra upper bound used on top of the paper's
// "advanced" group (ubs, uba, ubc, ubac, ubeac) — the six columns of
// Table II.
type UpperBound = bounds.Extra

// Upper-bound configurations.
const (
	// UBAdvanced uses only the advanced group.
	UBAdvanced = bounds.None
	// UBDegeneracy adds the degeneracy bound ub△.
	UBDegeneracy = bounds.Degeneracy
	// UBHIndex adds the h-index bound ubh.
	UBHIndex = bounds.HIndex
	// UBColorfulDegeneracy adds the colorful degeneracy bound ubcd.
	UBColorfulDegeneracy = bounds.ColorfulDegeneracy
	// UBColorfulHIndex adds the colorful h-index bound ubch.
	UBColorfulHIndex = bounds.ColorfulHIndex
	// UBColorfulPath adds the colorful path bound ubcp.
	UBColorfulPath = bounds.ColorfulPath
)

// Graph is a mutable attributed graph. Build it up with AddVertex /
// SetAttr / AddEdge, then query it with Find and friends. Mutations
// after a query are allowed; the next query re-freezes the graph.
//
// # Concurrency
//
// Read-only methods (M, Attr, Degree, HasEdge, Neighbors, IsFairClique,
// Find and the other query entry points) are safe to call from any
// number of goroutines simultaneously: the lazily built frozen snapshot
// they share is initialized under a mutex exactly once. Mutation
// (AddVertex, SetAttr, AddEdge) is single-goroutine: it must not run
// concurrently with any other method — reader or mutator — on the same
// Graph. A long-lived concurrent workload should freeze the graph into
// a Session (NewSession) and mutate through Session.Apply, which is
// fully concurrent-safe.
type Graph struct {
	b *graph.Builder

	// mu guards frozen. Mutators hold it only to invalidate; freeze
	// holds it across the build so concurrent readers share one
	// snapshot instead of racing the lazy init (the historical bug:
	// two goroutines calling HasEdge on a never-frozen graph raced on
	// the unsynchronized g.frozen write).
	mu     sync.Mutex
	frozen *graph.Graph // cache invalidated by mutation
}

// NewGraph returns a graph with n vertices (ids 0..n-1), all AttrA.
func NewGraph(n int) *Graph {
	return &Graph{b: graph.NewBuilder(n)}
}

// AddVertex appends a vertex with the given attribute, returning its
// id. Like all mutators it must not race any other method of g.
func (g *Graph) AddVertex(a Attr) int {
	g.invalidate()
	return int(g.b.AddVertex(a))
}

// SetAttr sets the attribute of vertex v. Like all mutators it must
// not race any other method of g.
func (g *Graph) SetAttr(v int, a Attr) {
	g.invalidate()
	g.b.SetAttr(int32(v), a)
}

// AddEdge adds the undirected edge (u, v). Self-loops are ignored and
// duplicates are deduplicated. Panics if an endpoint does not exist.
// Like all mutators it must not race any other method of g.
func (g *Graph) AddEdge(u, v int) {
	g.invalidate()
	g.b.AddEdge(int32(u), int32(v))
}

// invalidate drops the frozen snapshot ahead of a mutation. Taking the
// lock keeps the write ordered for any reader that slipped in between
// two mutations; the mutation of the builder itself is still
// single-goroutine by contract.
func (g *Graph) invalidate() {
	g.mu.Lock()
	g.frozen = nil
	g.mu.Unlock()
}

// N returns the number of vertices.
func (g *Graph) N() int { return int(g.b.N()) }

// M returns the number of distinct undirected edges.
func (g *Graph) M() int { return int(g.freeze().M()) }

// Attr returns the attribute of v.
func (g *Graph) Attr(v int) Attr { return g.freeze().Attr(int32(v)) }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return int(g.freeze().Deg(int32(v))) }

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool { return g.freeze().HasEdge(int32(u), int32(v)) }

// Neighbors returns the sorted neighbour list of v (a fresh slice).
func (g *Graph) Neighbors(v int) []int {
	nbrs := g.freeze().Neighbors(int32(v))
	out := make([]int, len(nbrs))
	for i, w := range nbrs {
		out[i] = int(w)
	}
	return out
}

// IsFairClique reports whether s is a (k, delta)-relative fair clique
// of g, per Definition 1 condition (i).
func (g *Graph) IsFairClique(s []int, k, delta int) bool {
	return g.freeze().IsFairClique(toInt32(s), k, delta)
}

// freeze materializes the immutable snapshot queries run against. It
// is safe for concurrent use: the first reader after a mutation builds
// the snapshot under the lock and every concurrent reader shares it.
func (g *Graph) freeze() *graph.Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.frozen == nil {
		g.frozen = g.b.Build()
	}
	return g.frozen
}

// fromInternal wraps an already-built internal graph.
func fromInternal(ig *graph.Graph) *Graph {
	b := graph.NewBuilder(int(ig.N()))
	for v := int32(0); v < ig.N(); v++ {
		b.SetAttr(v, ig.Attr(v))
	}
	for e := int32(0); e < ig.M(); e++ {
		u, v := ig.Edge(e)
		b.AddEdge(u, v)
	}
	return &Graph{b: b, frozen: ig}
}

// ReadSNAPFiles loads a SNAP-format edge-list file and an optional
// companion attribute file ("" for none) through the streaming CSR
// builder: external vertex ids may be sparse (they are densified in
// first-seen order, attribute file first), self-loops are dropped,
// duplicate and reversed edges are merged, and the raw edge list is
// never held in memory alongside the finished graph. Malformed records
// are rejected with file- and line-numbered errors. This is the ingest
// path for paper-scale instances; note that the returned Graph copies
// into the mutable builder, so for benchmark-scale read-only pipelines
// the cmd/benchmark ingest experiment uses the internal path directly.
func ReadSNAPFiles(edgePath, attrPath string) (*Graph, error) {
	ig, _, err := graph.LoadSNAP(edgePath, attrPath, graph.StreamConfig{})
	if err != nil {
		return nil, fmt.Errorf("fairclique: %w", err)
	}
	return fromInternal(ig), nil
}

// ReadGraph parses a graph from the text format documented in the
// internal graph package: "v <id> <a|b>" and "e <u> <v>" records, plus
// plain SNAP-style "<u> <v>" edge lines.
func ReadGraph(r io.Reader) (*Graph, error) {
	ig, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return fromInternal(ig), nil
}

// ReadLimits bounds ReadGraphLimited for untrusted input; zero fields
// are unlimited. See graph.ReadLimits for field semantics.
type ReadLimits = graph.ReadLimits

// ReadGraphLimited parses a graph like ReadGraph but rejects input
// exceeding lim with a line-numbered error instead of committing to an
// arbitrarily large allocation. This is the parser the mfcd daemon
// runs on uploaded graph bodies.
func ReadGraphLimited(r io.Reader, lim ReadLimits) (*Graph, error) {
	ig, err := graph.ReadWithLimits(r, lim)
	if err != nil {
		return nil, err
	}
	return fromInternal(ig), nil
}

// ReadGraphFile parses the graph stored at path.
func ReadGraphFile(path string) (*Graph, error) {
	ig, err := graph.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return fromInternal(ig), nil
}

// WriteGraph serializes g in the text format.
func WriteGraph(w io.Writer, g *Graph) error {
	return graph.Write(w, g.freeze())
}

// Options configures Find. The zero value is invalid (K must be >= 1);
// DefaultOptions supplies the recommended configuration.
type Options struct {
	// K is the per-attribute minimum count (>= 1).
	K int
	// Delta is the maximum attribute-count difference (>= 0). Read only
	// when Mode is ModeRelative; the other modes fix their own δ.
	//
	// Deprecated: passing δ = |V| or δ = 0 here to emulate the weak or
	// strong model duplicates what Mode states directly — set Mode
	// instead. Delta itself remains current for ModeRelative.
	Delta int
	// Mode selects the fairness model (default ModeRelative, which
	// reads Delta). ModeWeak and ModeStrong resolve their δ internally,
	// exactly like the session's QuerySpec.
	Mode Mode
	// DisableBounds turns off the upper-bound pruning group (the
	// paper's plain "MaxRFC" baseline).
	DisableBounds bool
	// Bound selects the extra upper bound (default UBColorfulDegeneracy).
	Bound UpperBound
	// DisableHeuristic turns off HeurRFC incumbent seeding.
	DisableHeuristic bool
	// DisableReduction skips the graph reduction pipeline (ablation).
	DisableReduction bool
	// MaxNodes aborts after this many branch nodes when positive; the
	// result is then a (possibly sub-optimal) fair clique with
	// Result.Exact == false and a certified Result.UpperBound on the
	// optimum.
	MaxNodes int64
	// Deadline, when positive, turns the search anytime: it stops within
	// a branch-granularity check interval of the wall-clock budget and
	// returns the best incumbent found plus a certified upper bound on
	// the optimum (Result.UpperBound / Result.Gap). A search that proves
	// optimality before the deadline returns exact as usual.
	Deadline time.Duration
	// Workers branches concurrently when > 1. Parallelism is
	// intra-component — the root branches of each connected component
	// are split across workers — so it helps even when the reduced
	// graph is a single giant component. The optimum size stays exact;
	// with several equally-sized optima the returned vertex set may
	// vary between runs.
	Workers int
}

// DefaultOptions returns the recommended configuration for (k, delta):
// all reductions, the colorful-degeneracy bound, heuristic seeding.
func DefaultOptions(k, delta int) Options {
	return Options{K: k, Delta: delta, Bound: UBColorfulDegeneracy}
}

// Result reports the outcome of Find.
type Result struct {
	// Clique is a maximum (k, δ)-relative fair clique, nil if none
	// exists. Vertices are ids of the queried Graph.
	Clique []int
	// CountA and CountB are the attribute counts of Clique.
	CountA, CountB int
	// Exact is false only if a budget (MaxNodes or Deadline) aborted the
	// search before it proved optimality.
	Exact bool
	// UpperBound is a certified upper bound on the maximum fair clique
	// size: the optimum lies in [Size(), UpperBound]. Equal to Size()
	// whenever Exact.
	UpperBound int
	// Gap is UpperBound - Size(): 0 for exact answers, otherwise the
	// certified optimality gap of the anytime answer.
	Gap int
	// Stats describes the search effort.
	Stats SearchStats
}

// SearchStats summarizes search effort.
type SearchStats struct {
	// Nodes is the number of branch-and-bound nodes visited.
	Nodes int64
	// BoundChecks and BoundPrunes count expensive bound evaluations and
	// the prunes they produced.
	BoundChecks, BoundPrunes int64
	// ReducedVertices and ReducedEdges are the graph size after the
	// reduction pipeline.
	ReducedVertices, ReducedEdges int
	// HeuristicSize is the size of the HeurRFC seed clique (0 if none).
	HeuristicSize int
	// FrontierPriced is the number of unexplored search regions priced
	// into the certificate after a budget abort (0 for exact runs).
	FrontierPriced int64
}

// Size returns len(Clique).
func (r *Result) Size() int { return len(r.Clique) }

// Find computes a maximum relative fair clique of g (Algorithm 2,
// MaxRFC). It returns an error only for invalid options.
//
// Find is a thin wrapper over a throwaway Session answering one
// QuerySpec — the session's normalization is the ONLY query
// normalization path, so one-shot and session answers can never
// diverge. StaticGridSplit keeps the throwaway session off the shared
// worker pool: a single query splits its Workers budget privately,
// exactly as the historical direct search did.
func Find(g *Graph, opt Options) (*Result, error) {
	sess := NewSession(g, SessionOptions{
		Bound:            opt.Bound,
		DisableBounds:    opt.DisableBounds,
		DisableHeuristic: opt.DisableHeuristic,
		DisableReduction: opt.DisableReduction,
		Workers:          opt.Workers,
		StaticGridSplit:  true,
	})
	defer sess.Close()
	return sess.Find(QuerySpec{
		K:        opt.K,
		Delta:    opt.Delta,
		Mode:     opt.Mode,
		Deadline: opt.Deadline,
		MaxNodes: opt.MaxNodes,
	})
}

// resultFromCore converts an internal search result to the public one.
func resultFromCore(ig *graph.Graph, res *core.Result) *Result {
	out := &Result{
		Clique:     toInt(res.Clique),
		Exact:      !res.Stats.Aborted,
		UpperBound: int(res.UpperBound),
		Stats: SearchStats{
			Nodes:           res.Stats.Nodes,
			BoundChecks:     res.Stats.BoundChecks,
			BoundPrunes:     res.Stats.BoundPrunes,
			ReducedVertices: int(res.Stats.ReducedVertices),
			ReducedEdges:    int(res.Stats.ReducedEdges),
			HeuristicSize:   res.Stats.HeuristicSize,
			FrontierPriced:  res.Stats.FrontierPriced,
		},
	}
	if out.UpperBound < len(res.Clique) {
		out.UpperBound = len(res.Clique)
	}
	out.Gap = out.UpperBound - len(res.Clique)
	out.CountA, out.CountB = ig.CountAttrs(res.Clique)
	return out
}

// FindWeak computes a maximum *weak* fair clique (Pan et al. [23]): at
// least k vertices of each attribute with no balance constraint.
//
// Deprecated: use Find with Options{K: k, Mode: ModeWeak} (or a
// Session with QuerySpec{K: k, Mode: ModeWeak}); the mode expresses
// the model directly instead of encoding it in δ.
func FindWeak(g *Graph, k int) (*Result, error) {
	opt := DefaultOptions(k, 0)
	opt.Mode = ModeWeak
	return Find(g, opt)
}

// FindStrong computes a maximum *strong* fair clique (Pan et al.
// [23]): at least k vertices of each attribute with exactly equal
// counts.
//
// Deprecated: use Find with Options{K: k, Mode: ModeStrong} (or a
// Session with QuerySpec{K: k, Mode: ModeStrong}).
func FindStrong(g *Graph, k int) (*Result, error) {
	opt := DefaultOptions(k, 0)
	opt.Mode = ModeStrong
	return Find(g, opt)
}

// Heuristic runs the linear-time HeurRFC framework (Algorithm 6) and
// returns the fair clique it finds (nil if none) together with a valid
// upper bound on the maximum fair clique size.
func Heuristic(g *Graph, k, delta int) (clique []int, upperBound int, err error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("fairclique: k must be >= 1, got %d", k)
	}
	if delta < 0 {
		return nil, 0, fmt.Errorf("fairclique: delta must be >= 0, got %d", delta)
	}
	res := heuristic.HeurRFC(g.freeze(), int32(k), int32(delta))
	return toInt(res.Clique), int(res.UB), nil
}

// ReduceStats reports the sizes after each reduction stage.
type ReduceStats struct {
	Stage    string
	Vertices int
	Edges    int
}

// Reduce runs the reduction pipeline (DegeneracyPrune ->
// EnColorfulCore -> ColorfulSup -> EnColorfulSup) for the size
// constraint k and returns the surviving subgraph (vertex ids refer to
// g) plus per-stage statistics. Every (k, δ)-fair clique of g survives
// in full.
func Reduce(g *Graph, k int) (kept []int, stages []ReduceStats, err error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("fairclique: k must be >= 1, got %d", k)
	}
	sub, st := reduce.Pipeline(g.freeze(), int32(k))
	for _, s := range st {
		stages = append(stages, ReduceStats{Stage: s.Name, Vertices: int(s.Vertices), Edges: int(s.Edges)})
	}
	return toInt(sub.ToParent), stages, nil
}

// Enumerate returns EVERY maximum (k, delta)-relative fair clique of g
// as a ResultSet, computed by the branch-and-bound engine in
// collect-at-optimum mode (one search visits all optima). For repeated
// or dynamic workloads prefer Session.Enumerate, which caches the set
// per cell and maintains it incrementally across Apply deltas.
//
// Historical note: before the query-API redesign this function
// returned a single clique from the Bron–Kerbosch baseline despite its
// name; that behavior lives on as FindExhaustive.
func Enumerate(g *Graph, k, delta int) (*ResultSet, error) {
	sess := NewSession(g, SessionOptions{StaticGridSplit: true})
	defer sess.Close()
	return sess.Enumerate(QuerySpec{K: k, Delta: delta, Kind: KindEnumerateAll})
}

// FindExhaustive computes a maximum fair clique via the Bron–Kerbosch
// enumeration baseline — exponential in the worst case, exact always.
// This is the pre-redesign behavior of Enumerate, kept one release
// under its honest name.
//
// Deprecated: use Find (the branch-and-bound engine is strictly
// faster) or Enumerate (for the full optimum set). The baseline
// survives only as the differential-testing oracle.
func FindExhaustive(g *Graph, k, delta int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("fairclique: k must be >= 1, got %d", k)
	}
	if delta < 0 {
		return nil, fmt.Errorf("fairclique: delta must be >= 0, got %d", delta)
	}
	return toInt(enum.MaxFairClique(g.freeze(), k, delta)), nil
}

// Mode selects the fairness model of a session query, following Pan et
// al.'s taxonomy: the relative model takes an explicit δ, the weak
// model drops the balance constraint (δ = |V|), the strong model
// demands exactly equal counts (δ = 0).
type Mode int

// Session query modes.
const (
	// ModeRelative is the paper's (k, δ)-relative fair clique.
	ModeRelative Mode = iota
	// ModeWeak requires only >= k vertices of each attribute.
	ModeWeak
	// ModeStrong requires exactly equal attribute counts (>= k each).
	ModeStrong
)

// QueryKind selects a query's result shape; see QuerySpec.Kind.
type QueryKind = session.QueryKind

// Query kinds.
const (
	// KindFind (the zero value) asks for one maximum fair clique,
	// answered by Session.Find / Session.FindGrid.
	KindFind = session.KindFind
	// KindEnumerateAll asks for every maximum fair clique, answered by
	// Session.Enumerate as a ResultSet.
	KindEnumerateAll = session.KindEnumerateAll
	// KindTopR asks for a diversified subset of R maximum fair cliques
	// chosen greedily for distinct-vertex coverage, answered by
	// Session.Enumerate.
	KindTopR = session.KindTopR
)

// QuerySpec is one cell of a session workload: the per-attribute
// minimum K, the fairness Mode, and — for ModeRelative — the balance
// tolerance Delta (ignored by the other modes). Kind selects the
// result shape (one clique, the full optimum set, or a diversified
// top-R subset). Deadline and MaxNodes optionally budget this cell
// alone: a budget-aborted answer carries a certified UpperBound/Gap
// and is never reused to seed or bound other cells.
type QuerySpec struct {
	K     int
	Delta int
	Mode  Mode
	// Kind is the result shape (default KindFind). Find/FindGrid
	// answer only KindFind; Enumerate answers the other kinds.
	Kind QueryKind
	// R is the result budget for KindTopR (ignored otherwise).
	R int
	// Deadline, when positive, is this query's wall-clock budget.
	Deadline time.Duration
	// MaxNodes, when positive, caps this query's branch nodes; the
	// tighter of this and SessionOptions.MaxNodes wins.
	MaxNodes int64
}

// ResultSet is the outcome of an enumeration query (Enumerate or
// Session.Enumerate): every maximum fair clique of the cell, or the
// diversified top-R subset for KindTopR.
type ResultSet struct {
	// Cliques holds the result cliques, each ascending-sorted, the set
	// deduplicated and in lexicographic order. Empty when no fair
	// clique exists.
	Cliques [][]int
	// Counts[i] = {CountA, CountB} of Cliques[i].
	Counts [][2]int
	// Size is the maximum fair clique size (0 when none exists).
	Size int
	// Exact is false only if a budget (MaxNodes or Deadline) aborted
	// the search: Cliques then holds only the optimum-sized cliques
	// found within the budget, and — like every inexact answer — the
	// set is never cached, pooled, or used to bound later queries.
	Exact bool
	// UpperBound is a certified upper bound on the maximum fair clique
	// size; equal to Size whenever Exact. Gap = UpperBound - Size.
	UpperBound int
	Gap        int
	// Stats describes the search effort (zero when the answer came
	// from the session's enumeration cache).
	Stats SearchStats
}

// SessionOptions configures a Session; the zero value is the
// recommended default (all reductions, the colorful-degeneracy bound,
// heuristic seeding, serial search). The per-query parameters live in
// QuerySpec.
// Speculation selects how FindGrid schedules the next dominance-chain
// cell while the current one is still branching.
type Speculation = session.Speculation

const (
	// SpecAuto (the default) speculates the next cell onto an idle
	// executor only when the chain is weak — the inherited bound is far
	// above the best warm-start seed, so the predecessor's answer is
	// unlikely to dominance-skip the cell anyway. Strong and cold
	// chains stay strictly sequential.
	SpecAuto = session.SpecAuto
	// SpecOff disables speculation: cells run strictly sequentially.
	SpecOff = session.SpecOff
	// SpecForce speculates every non-skippable cell; intended for
	// ablations and tests (answers never change, only the work racing).
	SpecForce = session.SpecForce
)

type SessionOptions struct {
	// Bound selects the extra upper bound (default UBColorfulDegeneracy).
	Bound UpperBound
	// DisableBounds, DisableHeuristic and DisableReduction mirror the
	// same Options knobs, applied to every query of the session.
	DisableBounds    bool
	DisableHeuristic bool
	DisableReduction bool
	// MaxNodes caps each individual query's branch nodes (0 =
	// unlimited). Capped (inexact) answers are never reused to bound or
	// seed later queries.
	MaxNodes int64
	// Workers is the total branching parallelism. With Workers > 1 the
	// session owns one lifetime work-stealing pool: Workers-1
	// persistent executors are started at the first query and serve
	// every Find, FindGrid and post-Apply requery until Close — a
	// single Find's donated subtrees are stolen by the same executors
	// that fan out a grid. The pool is partitioned into locality
	// domains (one per four executors); an executor drains its own
	// domain LIFO (cache-hot) before stealing the oldest task of a
	// remote domain.
	Workers int
	// Speculation controls chain-strength-aware cell speculation in
	// FindGrid (default SpecAuto). See the Speculation constants.
	Speculation Speculation
	// StaticGridSplit reverts FindGrid to statically slicing the
	// Workers budget across concurrent cells (the pre-scheduler
	// behavior, kept as the measured baseline of benchmark -exp sched
	// and as an escape hatch). Finished cells' workers then idle
	// instead of stealing.
	StaticGridSplit bool
	// MaxPreparedK bounds how many distinct k values keep their
	// prepared state (reduction snapshot, component machinery) warm in
	// a long-lived session; beyond the cap the least recently used k is
	// evicted and transparently rebuilt on demand. 0 = unlimited.
	MaxPreparedK int
	// MaxPoolSeeds bounds the warm-start clique pool, dropping the
	// smallest pooled cliques first. 0 = unlimited.
	MaxPoolSeeds int
}

// SessionStats aggregates the work of all queries a Session has
// answered, exposing what the amortization actually saved.
type SessionStats struct {
	// Queries is the number of cells answered (Find calls plus FindGrid
	// cells).
	Queries int64
	// Nodes, Donations, BoundChecks and BoundPrunes sum the per-query
	// search stats.
	Nodes, Donations, BoundChecks, BoundPrunes int64
	// ReductionBuilds counts reduction-pipeline runs; ReductionChained
	// is how many of them ran on a smaller-k snapshot instead of the
	// original graph; ReductionReuses counts queries served by an
	// already-built reduction and successor-mask set.
	ReductionBuilds, ReductionChained, ReductionReuses int64
	// WarmStarts counts queries seeded from a previously found clique;
	// DominanceSkips counts queries answered with zero branching
	// because a previous answer already proved the optimum.
	WarmStarts, DominanceSkips int64
	// Applies counts graph deltas applied to the session; Epoch is the
	// current graph generation (0 before the first Apply).
	Applies, Epoch int64
	// SnapshotsPatched and SnapshotsReused count per-k reduction
	// snapshots that an Apply re-reduced on the delta's dirty region
	// only, versus carried over verbatim. SnapshotsRippled counts
	// delete-only applies served by incremental peeling from the
	// deleted edges' endpoints, which examined RippleVisited of the
	// RippleDirty dirty-component vertices a re-reduction would have
	// re-processed.
	SnapshotsPatched, SnapshotsReused int64
	SnapshotsRippled                  int64
	RippleVisited, RippleDirty        int64
	// CompPrepsReused counts per-component search machinery (peel-rank
	// relabeling, successor masks, worker arenas) adopted across an
	// Apply instead of rebuilt — the receipt that invalidation is
	// component-scoped.
	CompPrepsReused int64
	// PoolRetained and PoolDropped count warm-start cliques that
	// survived an Apply versus ones destroyed by its deletions.
	PoolRetained, PoolDropped int64
	// PrepEvictions counts per-k prepared states evicted by the
	// MaxPreparedK cap.
	PrepEvictions int64
	// Steals counts donated subtrees executed through the session's
	// lifetime work-stealing pool; CrossCellSteals is the subset
	// executed by an executor that was not driving the donating cell —
	// proof that a finished or skipped cell's worker fed another cell.
	// LocalSteals and RemoteSteals split Steals by locality domain: a
	// local steal pops the executor's own domain queue (cache-hot
	// LIFO), a remote steal takes the oldest task of another domain.
	// WorkerReleases counts executors released into the pool; with the
	// session-lifetime pool this happens exactly once per executor, so
	// a WorkerReleases that stays at Workers-1 across many queries is
	// the receipt that the worker set is being reused, not rebuilt.
	Steals, CrossCellSteals, WorkerReleases int64
	LocalSteals, RemoteSteals               int64
	// PoolSearches counts queries that drew on the shared pool (both
	// Find and FindGrid cells once the session has gone parallel).
	PoolSearches int64
	// SpeculativeStarts, SpeculativeWins and SpeculativeCancels count
	// FindGrid cells launched speculatively ahead of their dominance
	// predecessor, the subset whose exact result was committed as the
	// cell's answer, and the subset cancelled (or returned inexact and
	// quarantined). Starts always equals wins + cancels after a grid
	// returns.
	SpeculativeStarts, SpeculativeWins, SpeculativeCancels int64
	// BridgeSeeds counts warm-start cliques grown around inserted
	// edges that merged two components during Apply.
	BridgeSeeds int64
	// BoundInjections and SeedInjections count live broadcasts of a
	// solved cell's proven bound / incumbent clique into searches still
	// running on the same graph generation.
	BoundInjections, SeedInjections int64
	// Enumerations counts Session.Enumerate calls that ran the collect
	// search; EnumCacheHits counts ones answered from the per-epoch
	// enumeration cache. EnumMaintained and EnumRecomputed count cached
	// sets an Apply carried forward by survivor filtering versus
	// re-enumerated from scratch.
	Enumerations, EnumCacheHits    int64
	EnumMaintained, EnumRecomputed int64
}

// Session prepares a graph — CSR, reduction snapshots per k, peel-rank
// relabeling, per-component chunked successor masks, attribute
// histograms — and answers any number of (k, δ, mode) queries against
// it without repeating that work. Queries also warm-start each other:
// every exact answer seeds the incumbent of later compatible queries
// and upper-bounds stricter cells through monotonicity (opt(k, δ) <=
// opt(k', δ') for k' <= k, δ' >= δ), so a grid of related queries
// costs far less than independent Find calls.
//
// A Session is dynamic: Apply mutates its graph with a batched Delta
// and invalidates only the prepared state the delta touches —
// untouched components keep their reduction snapshots and search
// machinery, surviving answers keep seeding and bounding, and a
// requery after a local delta typically costs a small fraction of a
// fresh NewSession. The Session snapshots the public Graph at
// creation: later mutations of the *Graph object* are not observed;
// mutate through Apply instead.
//
// A Session is safe for concurrent use, including queries racing an
// Apply: in-flight queries finish race-free on the graph generation
// they started on, queries issued after Apply returns see the new
// graph. FindGrid additionally parallelizes its cells through one
// session-global work-stealing pool, each cell with its own incumbent:
// the cells are driven in the dominance-chain order and every other
// worker of the budget steals donated search subtrees from whichever
// cell is branching — so dominance-skipped cells cost nothing and
// strand no workers.
type Session struct {
	inner *session.Session
}

// NewSession freezes g for repeated querying. At most one
// SessionOptions value may be supplied; none means defaults.
//
// The session snapshots g at this call and never looks at the Graph
// object again: mutating g afterwards (AddVertex / SetAttr / AddEdge)
// does NOT affect the session, whose answers keep describing the
// snapshot — there is no error and no divergence warning, by design,
// because the builder-shaped Graph and the live Session are separate
// lifecycles. Mutate the session's graph through Session.Apply; use
// the Graph mutators only to build the next snapshot for a future
// NewSession or Find. TestSessionSnapshotSemantics pins this contract.
func NewSession(g *Graph, opts ...SessionOptions) *Session {
	var o SessionOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return &Session{
		inner: session.New(g.freeze(), session.Options{
			UseBounds:       !o.DisableBounds,
			Extra:           o.Bound,
			UseHeuristic:    !o.DisableHeuristic,
			SkipReduction:   o.DisableReduction,
			MaxNodes:        o.MaxNodes,
			Workers:         o.Workers,
			Speculation:     o.Speculation,
			StaticGridSplit: o.StaticGridSplit,
			MaxPreparedK:    o.MaxPreparedK,
			MaxPoolSeeds:    o.MaxPoolSeeds,
		}),
	}
}

// normalize maps a QuerySpec to the internal (k, δ) cell. Weak cells
// resolve their δ (= current vertex count) inside the engine at query
// time, so they stay correct across Apply.
func (s *Session) normalize(spec QuerySpec) (session.Query, error) {
	if spec.K < 1 {
		return session.Query{}, fmt.Errorf("fairclique: k must be >= 1, got %d", spec.K)
	}
	if spec.MaxNodes < 0 {
		return session.Query{}, fmt.Errorf("fairclique: max nodes must be >= 0, got %d", spec.MaxNodes)
	}
	if spec.Deadline < 0 {
		return session.Query{}, fmt.Errorf("fairclique: deadline must be >= 0, got %v", spec.Deadline)
	}
	q := session.Query{K: int32(spec.K), Kind: spec.Kind, R: spec.R, MaxNodes: spec.MaxNodes}
	if spec.Deadline > 0 {
		q.Deadline = time.Now().Add(spec.Deadline)
	}
	switch spec.Mode {
	case ModeRelative:
		if spec.Delta < 0 {
			return session.Query{}, fmt.Errorf("fairclique: delta must be >= 0, got %d", spec.Delta)
		}
		q.Delta = int32(spec.Delta)
		return q, nil
	case ModeWeak:
		q.Weak = true
		return q, nil
	case ModeStrong:
		q.Delta = 0
		return q, nil
	default:
		return session.Query{}, fmt.Errorf("fairclique: unknown mode %d", spec.Mode)
	}
}

// Delta is a batched mutation of a Session's graph: vertex appends,
// vertex deletions (the id stays valid but isolated — ids are never
// recycled, so cliques and results remain comparable across deltas),
// edge insertions and edge deletions. Inserting a present edge or
// deleting an absent one is a silent no-op; contradictory operations
// (the same edge added and deleted, an added edge incident to a
// deleted vertex) are rejected.
type Delta struct {
	// AddVertices appends vertices with the given attributes; they
	// receive ids N(), N()+1, ... and may appear in AddEdges.
	AddVertices []Attr
	// AddEdges inserts undirected edges.
	AddEdges [][2]int
	// DelEdges removes undirected edges.
	DelEdges [][2]int
	// DelVertices drops all edges incident to these vertices.
	DelVertices []int
}

// ApplyStats reports what one Apply invalidated and what it kept.
type ApplyStats struct {
	// Epoch is the graph generation the delta created (1, 2, ...).
	Epoch int64
	// InsertedEdges, DeletedEdges and NewVertices are the delta's
	// effective size after deduplication against the previous graph.
	InsertedEdges, DeletedEdges, NewVertices int
	// SnapshotsPatched and SnapshotsReused count per-k reduction
	// snapshots re-reduced on the dirty region vs carried verbatim;
	// SnapshotsRippled counts snapshots updated by the delete-only
	// incremental peel, which examined RippleVisited of RippleDirty
	// dirty-component vertices.
	SnapshotsPatched, SnapshotsReused int64
	SnapshotsRippled                  int64
	RippleVisited, RippleDirty        int64
	// CompPrepsReused counts adopted per-component search machinery.
	CompPrepsReused int64
	// PoolRetained and PoolDropped count surviving vs destroyed
	// warm-start cliques.
	PoolRetained, PoolDropped int64
	// BridgeSeeds counts warm-start cliques grown around inserted
	// edges whose endpoints lay in different components — the merged
	// component's seed material, drawn from both halves' pooled
	// cliques.
	BridgeSeeds int64
	// EnumDiffs reports, per enumeration cell cached by a previous
	// Session.Enumerate, which cliques this delta destroyed and which
	// it created — the epoch diff of the incrementally maintained
	// result sets.
	EnumDiffs []EnumDiff
}

// EnumDiff is one cached enumeration cell's epoch diff across an
// Apply: how the delta changed its maximum-fair-clique set.
type EnumDiff struct {
	// K and Mode identify the cell; Delta is meaningful for
	// ModeRelative (strong cells report Delta 0).
	K, Delta int
	Mode     Mode
	// Size is the cell's new optimum (0 when Dropped or none exists).
	Size int
	// Died are old-set cliques the delta destroyed; Born are ones it
	// created. Each ascending-sorted.
	Died, Born [][]int
	// Recomputed is set when the cell was re-enumerated from scratch;
	// unset when survivor filtering maintained it without a search.
	Recomputed bool
	// Dropped is set when a re-enumeration under the session's budgets
	// came back inexact: the cell left the cache (the next Enumerate
	// rebuilds it) and Born/Size are meaningless.
	Dropped bool
}

// Apply mutates the session's graph in place and invalidates only the
// prepared state the delta touches. Answers returned by Find/FindGrid
// after Apply are exactly those of a fresh session over the mutated
// graph; queries already in flight complete against the pre-delta
// graph. Concurrent Apply calls are serialized. It returns what was
// invalidated versus retained, for observability.
func (s *Session) Apply(d Delta) (ApplyStats, error) {
	gd := &graph.Delta{
		AddVertices: d.AddVertices,
		AddEdges:    toEdge32(d.AddEdges),
		DelEdges:    toEdge32(d.DelEdges),
		DelVertices: toInt32(d.DelVertices),
	}
	ast, err := s.inner.Apply(gd)
	if err != nil {
		return ApplyStats{}, fmt.Errorf("fairclique: %w", err)
	}
	return ApplyStats{
		Epoch:            ast.Epoch,
		InsertedEdges:    ast.InsertedEdges,
		DeletedEdges:     ast.DeletedEdges,
		NewVertices:      ast.NewVertices,
		SnapshotsPatched: ast.SnapshotsPatched,
		SnapshotsReused:  ast.SnapshotsReused,
		SnapshotsRippled: ast.SnapshotsRippled,
		RippleVisited:    ast.RippleVisited,
		RippleDirty:      ast.RippleDirty,
		CompPrepsReused:  ast.CompPrepsReused,
		PoolRetained:     ast.PoolRetained,
		PoolDropped:      ast.PoolDropped,
		BridgeSeeds:      ast.BridgeSeeds,
		EnumDiffs:        enumDiffsFromInternal(ast.EnumDiffs),
	}, nil
}

func enumDiffsFromInternal(ds []session.EnumDiff) []EnumDiff {
	if len(ds) == 0 {
		return nil
	}
	out := make([]EnumDiff, len(ds))
	for i, d := range ds {
		mode := ModeRelative
		if d.Weak {
			mode = ModeWeak
		}
		out[i] = EnumDiff{
			K:          int(d.K),
			Delta:      int(d.Delta),
			Mode:       mode,
			Size:       int(d.Size),
			Died:       cliquesToInt(d.Died),
			Born:       cliquesToInt(d.Born),
			Recomputed: d.Recomputed,
			Dropped:    d.Dropped,
		}
	}
	return out
}

func cliquesToInt(cs [][]int32) [][]int {
	if len(cs) == 0 {
		return nil
	}
	out := make([][]int, len(cs))
	for i, c := range cs {
		out[i] = toInt(c)
	}
	return out
}

// N returns the current vertex count of the session's graph (it grows
// with Delta.AddVertices; deletions never shrink it).
func (s *Session) N() int { return int(s.inner.Graph().N()) }

// M returns the current edge count of the session's graph.
func (s *Session) M() int { return int(s.inner.Graph().M()) }

func toEdge32(es [][2]int) [][2]int32 {
	out := make([][2]int32, len(es))
	for i, e := range es {
		out[i] = [2]int32{int32(e[0]), int32(e[1])}
	}
	return out
}

// Find answers one query on the warm session. The result is identical
// (in size and validity) to an independent Find/FindWeak/FindStrong
// call on the same graph, but reuses the session's prepared state and
// prior answers.
func (s *Session) Find(spec QuerySpec) (*Result, error) {
	q, err := s.normalize(spec)
	if err != nil {
		return nil, err
	}
	res, err := s.inner.Find(q)
	if err != nil {
		return nil, err
	}
	// Vertex ids are stable across Apply (appends only), so the latest
	// graph is always valid for attribute accounting.
	return resultFromCore(s.inner.Graph(), res), nil
}

// Enumerate answers an enumeration query on the warm session: every
// maximum fair clique of spec's cell (KindEnumerateAll, or KindFind
// for convenience), or the diversified top-R subset (KindTopR). Exact
// sets are cached on the current graph generation and maintained
// incrementally by Apply, so repeating the query after a delta is
// usually free; Deadline/MaxNodes make the answer anytime (Exact
// false, certified UpperBound, quarantined from every cache).
func (s *Session) Enumerate(spec QuerySpec) (*ResultSet, error) {
	q, err := s.normalize(spec)
	if err != nil {
		return nil, err
	}
	if q.Kind == session.KindFind {
		q.Kind = session.KindEnumerateAll
	}
	rs, err := s.inner.Enumerate(q)
	if err != nil {
		return nil, err
	}
	return resultSetFromInternal(rs), nil
}

// resultSetFromInternal converts the session layer's ResultSet to the
// public int-typed one.
func resultSetFromInternal(rs *session.ResultSet) *ResultSet {
	out := &ResultSet{
		Cliques:    make([][]int, len(rs.Cliques)),
		Counts:     make([][2]int, len(rs.Cliques)),
		Size:       int(rs.Size),
		Exact:      rs.Exact,
		UpperBound: int(rs.UpperBound),
		Stats: SearchStats{
			Nodes:           rs.Stats.Nodes,
			BoundChecks:     rs.Stats.BoundChecks,
			BoundPrunes:     rs.Stats.BoundPrunes,
			ReducedVertices: int(rs.Stats.ReducedVertices),
			ReducedEdges:    int(rs.Stats.ReducedEdges),
			HeuristicSize:   rs.Stats.HeuristicSize,
			FrontierPriced:  rs.Stats.FrontierPriced,
		},
	}
	for i, c := range rs.Cliques {
		out.Cliques[i] = toInt(c)
		out.Counts[i] = [2]int{int(rs.Counts[i][0]), int(rs.Counts[i][1])}
	}
	if out.UpperBound < out.Size {
		out.UpperBound = out.Size
	}
	out.Gap = out.UpperBound - out.Size
	return out
}

// FindGrid answers a grid of cells, returning results aligned with
// specs. Cells are scheduled to maximize reuse (k ascending, δ
// descending) and run concurrently when Workers > 1; every cell's
// result is exactly what an independent Find of that cell would
// return.
func (s *Session) FindGrid(specs []QuerySpec) ([]*Result, error) {
	qs := make([]session.Query, len(specs))
	for i, spec := range specs {
		q, err := s.normalize(spec)
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	rs, err := s.inner.FindGrid(qs)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(rs))
	for i, r := range rs {
		out[i] = resultFromCore(s.inner.Graph(), r)
	}
	return out, nil
}

// Stats reports the session's aggregated effort and amortization
// counters.
func (s *Session) Stats() SessionStats {
	st := s.inner.Stats()
	return SessionStats{
		Queries:          st.Queries,
		Nodes:            st.Nodes,
		Donations:        st.Donations,
		BoundChecks:      st.BoundChecks,
		BoundPrunes:      st.BoundPrunes,
		ReductionBuilds:  st.ReductionBuilds,
		ReductionChained: st.ReductionChained,
		ReductionReuses:  st.ReductionReuses,
		WarmStarts:       st.WarmStarts,
		DominanceSkips:   st.DominanceSkips,
		Applies:          st.Applies,
		Epoch:            st.Epoch,
		SnapshotsPatched: st.SnapshotsPatched,
		SnapshotsReused:  st.SnapshotsReused,
		SnapshotsRippled: st.SnapshotsRippled,
		RippleVisited:    st.RippleVisited,
		RippleDirty:      st.RippleDirty,
		CompPrepsReused:  st.CompPrepsReused,
		PoolRetained:     st.PoolRetained,
		PoolDropped:      st.PoolDropped,
		PrepEvictions:    st.PrepEvictions,
		Steals:           st.Steals,
		CrossCellSteals:  st.CrossCellSteals,
		WorkerReleases:   st.WorkerReleases,
		LocalSteals:      st.LocalSteals,
		RemoteSteals:     st.RemoteSteals,
		PoolSearches:     st.PoolSearches,

		SpeculativeStarts:  st.SpeculativeStarts,
		SpeculativeWins:    st.SpeculativeWins,
		SpeculativeCancels: st.SpeculativeCancels,
		BridgeSeeds:        st.BridgeSeeds,
		BoundInjections:    st.BoundInjections,
		SeedInjections:     st.SeedInjections,
		Enumerations:       st.Enumerations,
		EnumCacheHits:      st.EnumCacheHits,
		EnumMaintained:     st.EnumMaintained,
		EnumRecomputed:     st.EnumRecomputed,
	}
}

// Close shuts down the session's lifetime worker pool and waits for
// its executors to exit. Idempotent; a never-parallel session closes
// trivially. The session stays queryable afterwards — later queries
// simply run without the shared pool — so Close releases resources
// without poisoning the value. Long-lived programs holding many
// parallel sessions should Close the ones they retire.
func (s *Session) Close() { s.inner.Close() }

func toInt32(s []int) []int32 {
	out := make([]int32, len(s))
	for i, v := range s {
		out[i] = int32(v)
	}
	return out
}

func toInt(s []int32) []int {
	if s == nil {
		return nil
	}
	out := make([]int, len(s))
	for i, v := range s {
		out[i] = int(v)
	}
	return out
}
