#!/bin/sh
# serve-smoke: boot mfcd on a random port and walk the whole endpoint
# surface with curl — create (upload + rejected garbage), query (fresh
# and cached), grid, enumerate (full set, cached, top-r), mutate
# (buffered, then flushed by the next query), explicit flush, metrics,
# admission blacklist, delete. Both path generations are walked: the
# /v1 API for real, the legacy unversioned paths for their 301s. Two
# hard-fail conditions: any unexpected HTTP status, and a differential
# mismatch — the graph mutated through buffered deltas must answer
# exactly like the same final graph uploaded fresh.
#
# OUT_DIR (default /tmp/serve-smoke) receives smoke.log, the full
# request/response transcript CI uploads as an artifact.
set -eu

OUT_DIR="${OUT_DIR:-/tmp/serve-smoke}"
mkdir -p "$OUT_DIR"
LOG="$OUT_DIR/smoke.log"
: > "$LOG"

say() { echo "serve-smoke: $*" | tee -a "$LOG"; }
fail() { say "FAIL: $*"; exit 1; }

WORK=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

say "building mfcd"
go build -o "$WORK/mfcd" ./cmd/mfcd

"$WORK/mfcd" -addr 127.0.0.1:0 -ready-file "$WORK/addr" \
    -blacklist mallory -max-inflight 4 2>>"$LOG" &
PID=$!
i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon never wrote the ready file"
    kill -0 "$PID" 2>/dev/null || fail "daemon exited during startup (see $LOG)"
    sleep 0.1
done
BASE="http://$(cat "$WORK/addr")"
say "daemon listening at $BASE"

BODY="$OUT_DIR/last_body.json"

# req METHOD PATH WANT_STATUS [extra curl args...] — performs the call,
# logs it, hard-fails on a status mismatch, leaves the body in $BODY.
req() {
    _method=$1 _path=$2 _want=$3
    shift 3
    _status=$(curl -sS -o "$BODY" -w '%{http_code}' -X "$_method" "$BASE$_path" "$@") ||
        fail "curl $_method $_path"
    {
        printf '>>> %s %s -> %s\n' "$_method" "$_path" "$_status"
        cat "$BODY"
        echo
    } >>"$LOG"
    [ "$_status" = "$_want" ] || fail "$_method $_path returned $_status, want $_want ($(cat "$BODY"))"
}

# jqget FILTER — extracts from the last response body.
jqget() { jq -r "$1" <"$BODY"; }

req GET /v1/healthz 200

# --- legacy paths: one release of 301s to the /v1 twin --------------
for p in /healthz /metrics /graphs; do
    req GET "$p" 301
    LOC=$(curl -sS -o /dev/null -w '%{redirect_url}' "$BASE$p") || fail "curl $p"
    case "$LOC" in
    */v1"$p") : ;;
    *) fail "legacy $p redirects to $LOC, want /v1$p" ;;
    esac
done
say "legacy paths 301 to /v1"

# --- create: upload the balanced-K4-plus-pendant test graph ---------
cat >"$WORK/g.txt" <<'EOF'
v 0 a
v 1 a
v 2 b
v 3 b
v 4 a
e 0 1
e 0 2
e 0 3
e 1 2
e 1 3
e 2 3
e 0 4
EOF
req POST "/v1/graphs?name=demo" 201 -H 'Content-Type: text/plain' --data-binary @"$WORK/g.txt"
[ "$(jqget .vertices)" = 5 ] || fail "uploaded graph has $(jqget .vertices) vertices, want 5"

# Garbage uploads die with the error envelope — bad_request plus the
# offending line — and register nothing.
req POST "/v1/graphs?name=bad" 400 -H 'Content-Type: text/plain' --data-binary 'e 0 2000000000'
[ "$(jqget .error.code)" = "bad_request" ] || fail "garbage upload code $(jqget .error.code), want bad_request"
[ "$(jqget .error.line)" -ge 1 ] || fail "garbage upload error does not name a line: $(cat "$BODY")"
req GET /v1/graphs/bad 404
[ "$(jqget .error.code)" = "not_found" ] || fail "missing graph code $(jqget .error.code), want not_found"

# --- query: fresh, then cached --------------------------------------
req POST /v1/graphs/demo/query 200 -H 'Content-Type: application/json' -d '{"k":2,"delta":0}'
[ "$(jqget .size)" = 4 ] || fail "(2,0) query size $(jqget .size), want 4"
[ "$(jqget .cached)" = false ] || fail "first query claims a cache hit"
req POST /v1/graphs/demo/query 200 -H 'Content-Type: application/json' -d '{"k":2,"delta":0}'
[ "$(jqget .cached)" = true ] || fail "second identical query missed the cache"

req POST /v1/graphs/demo/grid 200 -H 'Content-Type: application/json' \
    -d '{"cells":[{"k":1,"delta":1},{"k":2,"delta":0},{"k":2,"mode":"strong"}]}'
[ "$(jqget '.results | length')" = 3 ] || fail "grid returned $(jqget '.results | length') cells, want 3"

# --- enumerate: the full optimum set, cached replay, top-r ----------
req POST /v1/graphs/demo/enumerate 200 -H 'Content-Type: application/json' -d '{"k":2,"delta":0}'
[ "$(jqget .size)" = 4 ] || fail "enumerate (2,0) size $(jqget .size), want 4"
[ "$(jqget .count)" = 1 ] || fail "enumerate (2,0) found $(jqget .count) cliques, want 1"
[ "$(jqget '.cliques[0] | join(",")')" = "0,1,2,3" ] || fail "enumerate clique $(jqget '.cliques[0]'), want [0,1,2,3]"
[ "$(jqget .exact)" = true ] || fail "unbudgeted enumerate not exact"
req POST /v1/graphs/demo/enumerate 200 -H 'Content-Type: application/json' -d '{"k":2,"delta":0}'
[ "$(jqget .cached)" = true ] || fail "second identical enumerate missed the cache"
req POST /v1/graphs/demo/enumerate 200 -H 'Content-Type: application/json' -d '{"k":1,"delta":3,"r":2}'
[ "$(jqget .count)" -le 2 ] || fail "top-2 enumerate returned $(jqget .count) cliques"
req POST /v1/graphs/demo/enumerate 400 -H 'Content-Type: application/json' -d '{"k":2,"r":-1}'
[ "$(jqget .error.code)" = "bad_request" ] || fail "negative r code $(jqget .error.code), want bad_request"
say "enumerate ok: full set, cache hit, top-r"

# --- mutate: buffered ops, flushed by the next query ----------------
req POST /v1/graphs/demo/mutate 200 -H 'Content-Type: text/plain' \
    --data-binary '+v:b
+e:5:0 +e:5:1 +e:5:2 +e:5:3'
[ "$(jqget .buffered_ops)" = 5 ] || fail "mutate buffered $(jqget .buffered_ops) ops, want 5"
req GET /v1/graphs/demo 200
[ "$(jqget .epoch)" = 0 ] || fail "mutation flushed before any query (epoch $(jqget .epoch))"

req POST /v1/graphs/demo/query 200 -H 'Content-Type: application/json' -d '{"k":2,"delta":1}'
MUTATED_SIZE=$(jqget .size)
[ "$(jqget .epoch)" = 1 ] || fail "query after mutate ran at epoch $(jqget .epoch), want 1"

# --- differential: deltas vs fresh upload of the final graph --------
cat >"$WORK/g2.txt" <<'EOF'
v 0 a
v 1 a
v 2 b
v 3 b
v 4 a
v 5 b
e 0 1
e 0 2
e 0 3
e 1 2
e 1 3
e 2 3
e 0 4
e 5 0
e 5 1
e 5 2
e 5 3
EOF
req POST "/v1/graphs?name=mirror" 201 -H 'Content-Type: text/plain' --data-binary @"$WORK/g2.txt"
req POST /v1/graphs/mirror/query 200 -H 'Content-Type: application/json' -d '{"k":2,"delta":1}'
FRESH_SIZE=$(jqget .size)
[ "$MUTATED_SIZE" = "$FRESH_SIZE" ] ||
    fail "differential mismatch: mutated graph answers $MUTATED_SIZE, fresh upload answers $FRESH_SIZE"
say "differential ok: mutated == fresh == $FRESH_SIZE"

# --- explicit flush + metrics ---------------------------------------
req POST /v1/graphs/demo/mutate 200 -H 'Content-Type: text/plain' --data-binary '-e:0:4'
req POST /v1/graphs/demo/flush 200
[ "$(jqget .epoch)" = 2 ] || fail "explicit flush left epoch $(jqget .epoch), want 2"

req GET /v1/metrics 200
[ "$(jqget .graphs.demo.epoch)" = 2 ] || fail "metrics report demo at epoch $(jqget .graphs.demo.epoch), want 2"
HITS=$(jqget .cache_hits)
[ "$HITS" -ge 1 ] || fail "metrics report $HITS cache hits, want >= 1"
jqget '.endpoints.query.p99_ms' >/dev/null || fail "metrics missing query latency block"

# --- anytime: budgeted queries carry a certified gap, never cache ---
# A deterministic dense graph (LCG edge coin flips) big enough that a
# one-node budget and a tiny deadline both abort mid-search.
awk 'BEGIN{
    n = 300; s = 12345
    for (v = 0; v < n; v++) printf "v %d %s\n", v, (v % 2 ? "b" : "a")
    for (u = 0; u < n; u++) for (v = u + 1; v < n; v++) {
        s = (s * 75 + 74) % 65537
        if (s % 100 < 60) printf "e %d %d\n", u, v
    }
}' >"$WORK/dense.txt"
req POST "/v1/graphs?name=anyt" 201 -H 'Content-Type: text/plain' --data-binary @"$WORK/dense.txt"

req POST /v1/graphs/anyt/query 200 -H 'Content-Type: application/json' -d '{"k":2,"delta":1,"max_nodes":1}'
[ "$(jqget .exact)" = false ] || fail "node-budgeted query claims exact"
[ "$(jqget .cached)" = false ] || fail "budgeted query claims a cache hit"
GAP=$(jqget .gap)
[ "$GAP" -ge 0 ] || fail "budgeted query gap $GAP < 0"
[ "$(jqget .upper_bound)" -ge "$(jqget .size)" ] || fail "certificate below incumbent"
req POST /v1/graphs/anyt/query 200 -H 'Content-Type: application/json' -d '{"k":2,"delta":1,"max_nodes":1}'
[ "$(jqget .cached)" = false ] || fail "inexact answer was served from the cache"

req POST /v1/graphs/anyt/query 200 -H 'Content-Type: application/json' -d '{"k":2,"delta":1,"deadline_ms":20}'
[ "$(jqget .exact)" = false ] || fail "20ms-deadline query on the dense graph claims exact"
[ "$(jqget .gap)" -ge 0 ] || fail "deadline query gap $(jqget .gap) < 0"
say "anytime ok: budgeted answers inexact, gap >= 0, never cached"

# A generous deadline on the tiny demo graph finishes exact: gap 0.
req POST /v1/graphs/demo/query 200 -H 'Content-Type: application/json' -d '{"k":2,"delta":0,"deadline_ms":30000}'
[ "$(jqget .exact)" = true ] || fail "generous-deadline query on demo not exact"
[ "$(jqget .gap)" = 0 ] || fail "exact deadline query gap $(jqget .gap) != 0"

# Negative budgets are client errors.
req POST /v1/graphs/anyt/query 400 -H 'Content-Type: application/json' -d '{"k":2,"delta":1,"deadline_ms":-1}'

# --- admission: the blacklist holds on every endpoint ---------------
req GET /v1/graphs 403 -H 'X-Client: mallory'
req POST /v1/graphs/demo/query 403 -H 'X-Client: mallory' \
    -H 'Content-Type: application/json' -d '{"k":2,"delta":0}'

# --- delete ---------------------------------------------------------
req DELETE /v1/graphs/mirror 200
req GET /v1/graphs/mirror 404

say "PASS: full endpoint walk + differential"
