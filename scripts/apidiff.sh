#!/bin/sh
# API-compatibility gate: diff the exported surface of the public
# fairclique package at HEAD against a base commit (APIDIFF_BASE,
# default HEAD^) with golang.org/x/exp/cmd/apidiff. Incompatible
# changes fail the gate unless an `api-break` file at the repo root
# acknowledges an intentional break for this release — the follow-up
# PR deletes the file, and the gate proves that follow-up is additive.
#
# Skips gracefully when apidiff is not installed (the dev container
# has no network; CI installs it on the runner) or when the base
# commit does not exist (the repo's first commit).
set -eu

BASE="${APIDIFF_BASE:-HEAD^}"
PKG=fairclique

if ! command -v apidiff >/dev/null 2>&1; then
    echo "apidiff: tool not installed; skipping (CI installs golang.org/x/exp/cmd/apidiff)" >&2
    exit 0
fi
if ! git rev-parse --verify --quiet "$BASE^{commit}" >/dev/null; then
    echo "apidiff: base $BASE does not exist; skipping" >&2
    exit 0
fi

tmp=$(mktemp -d)
trap 'git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true; rm -rf "$tmp"' EXIT

git worktree add --detach "$tmp/base" "$BASE" >/dev/null
(cd "$tmp/base" && apidiff -w "$tmp/old.export" "$PKG")

report=$(apidiff -incompatible "$tmp/old.export" "$PKG")
if [ -z "$report" ]; then
    echo "apidiff: no incompatible changes in $PKG vs $BASE"
    exit 0
fi
echo "apidiff: incompatible changes in $PKG vs $BASE:" >&2
echo "$report" >&2
if [ -f api-break ]; then
    echo "apidiff: acknowledged by the api-break file; passing (delete the file in the next PR)" >&2
    exit 0
fi
echo "apidiff: intentional? add an 'api-break' file at the repo root explaining the break" >&2
exit 1
