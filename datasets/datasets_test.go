package datasets

import (
	"testing"

	"fairclique"
)

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("%d names; want 6", len(names))
	}
	if names[0] != "themarker-sim" || names[5] != "aminer-sim" {
		t.Fatalf("unexpected order %v", names)
	}
}

func TestDescribe(t *testing.T) {
	info, err := Describe("flixster-sim")
	if err != nil {
		t.Fatal(err)
	}
	if info.DefaultK != 3 || info.DefaultDelta != 3 || len(info.Ks) != 5 {
		t.Fatalf("%+v", info)
	}
	if _, err := Describe("bogus"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestLoadAndSearch(t *testing.T) {
	g, err := Load("dblp-sim", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 || g.M() == 0 {
		t.Fatal("empty dataset")
	}
	// The planted community guarantees a fair clique at modest k.
	res, err := fairclique.Find(g, fairclique.DefaultOptions(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() < 8 {
		t.Fatalf("found %d; planted community is larger", res.Size())
	}
	if !g.IsFairClique(res.Clique, 4, 3) {
		t.Fatal("result invalid")
	}
	if _, err := Load("bogus", 1); err != nil {
		// expected
	} else {
		t.Fatal("unknown dataset should error")
	}
}

func TestCaseStudies(t *testing.T) {
	all := CaseStudies()
	if len(all) != 4 {
		t.Fatalf("%d case studies", len(all))
	}
	cs, err := LoadCaseStudy("nba")
	if err != nil {
		t.Fatal(err)
	}
	if cs.K != 5 || cs.Delta != 3 {
		t.Fatalf("k=%d δ=%d", cs.K, cs.Delta)
	}
	if len(cs.Labels) != cs.Graph.N() {
		t.Fatal("label count mismatch")
	}
	res, err := fairclique.Find(cs.Graph, fairclique.DefaultOptions(cs.K, cs.Delta))
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() < 2*cs.K {
		t.Fatalf("case study found only %d", res.Size())
	}
	if _, err := LoadCaseStudy("zzz"); err == nil {
		t.Fatal("unknown case study should error")
	}
}
