// Package datasets exposes the repository's deterministic benchmark
// graphs through the public fairclique API: the six stand-ins for the
// paper's evaluation datasets (Table I) and the four labelled
// case-study graphs (Fig. 10). See DESIGN.md "Substitutions" for what
// each stand-in imitates and why.
package datasets

import (
	"fairclique"
	"fairclique/internal/gen"
	"fairclique/internal/graph"
)

// Info describes one benchmark dataset stand-in.
type Info struct {
	// Name is the dataset identifier (e.g. "dblp-sim").
	Name string
	// Description says which real dataset it imitates.
	Description string
	// Ks is the k sweep range the paper uses for this dataset.
	Ks []int
	// DefaultK and DefaultDelta are the paper's default parameters.
	DefaultK, DefaultDelta int
}

// Names lists the datasets in the paper's Table I order.
func Names() []string {
	var out []string
	for _, d := range gen.Datasets() {
		out = append(out, d.Name)
	}
	return out
}

// Describe returns metadata for the named dataset.
func Describe(name string) (Info, error) {
	d, err := gen.DatasetByName(name)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Name:         d.Name,
		Description:  d.Description,
		Ks:           append([]int(nil), d.Ks...),
		DefaultK:     d.DefaultK,
		DefaultDelta: d.DefaultDelta,
	}, nil
}

// Load builds the named dataset at the given scale (1.0 = default
// size; smaller is faster). Identical (name, scale) yields an identical
// graph on every platform.
func Load(name string, scale float64) (*fairclique.Graph, error) {
	d, err := gen.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	return toPublic(d.Build(scale)), nil
}

// LoadSNAP loads a SNAP-format edge-list file and optional attribute
// file ("" for none) through the streaming CSR builder — the ingest
// path for external or gengraph-produced paper-scale instances. See
// the package README for the format contract and a reproducible
// multi-million-edge recipe.
func LoadSNAP(edgePath, attrPath string) (*fairclique.Graph, error) {
	return fairclique.ReadSNAPFiles(edgePath, attrPath)
}

// CaseStudy is a labelled domain graph for one of the four Fig. 10
// scenarios, with the paper's query parameters.
type CaseStudy struct {
	// Name is "aminer", "dbai", "nba" or "imdb".
	Name string
	// Graph is the attributed graph.
	Graph *fairclique.Graph
	// Labels names each vertex.
	Labels []string
	// AttrNames names attribute values a and b (e.g. "DB", "AI").
	AttrNames [2]string
	// K and Delta are the paper's query parameters (5 and 3).
	K, Delta int
}

// CaseStudies returns all four case studies.
func CaseStudies() []*CaseStudy {
	var out []*CaseStudy
	for _, cs := range gen.CaseStudies() {
		out = append(out, convertCase(cs))
	}
	return out
}

// LoadCaseStudy returns the named case study.
func LoadCaseStudy(name string) (*CaseStudy, error) {
	cs, err := gen.CaseStudyByName(name)
	if err != nil {
		return nil, err
	}
	return convertCase(cs), nil
}

func convertCase(cs *gen.CaseStudy) *CaseStudy {
	return &CaseStudy{
		Name:      cs.Name,
		Graph:     toPublic(cs.Graph),
		Labels:    append([]string(nil), cs.Labels...),
		AttrNames: cs.AttrNames,
		K:         cs.K,
		Delta:     cs.Delta,
	}
}

// toPublic copies an internal graph into the public Graph type.
func toPublic(ig *graph.Graph) *fairclique.Graph {
	g := fairclique.NewGraph(int(ig.N()))
	for v := int32(0); v < ig.N(); v++ {
		g.SetAttr(int(v), ig.Attr(v))
	}
	for e := int32(0); e < ig.M(); e++ {
		u, v := ig.Edge(e)
		g.AddEdge(int(u), int(v))
	}
	return g
}
