package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

func TestCLIExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	for _, tc := range []struct {
		exp  string
		want string
	}{
		{"table1", "Table I"},
		{"fig8", "HeurRFC size"},
		{"fig4", "Fig. 4"},
	} {
		out, err := runCLI(t, "-exp", tc.exp, "-scale", "0.05", "-max-nodes", "1000000")
		if err != nil {
			t.Fatalf("benchmark -exp %s failed: %v\n%s", tc.exp, err, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("-exp %s output missing %q:\n%s", tc.exp, tc.want, out)
		}
	}
	if _, err := runCLI(t, "-exp", "nope"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestCLIOutFile(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	path := filepath.Join(t.TempDir(), "results.md")
	out, err := runCLI(t, "-exp", "table1", "-scale", "0.05", "-out", path)
	if err != nil {
		t.Fatalf("benchmark -out failed: %v\n%s", err, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table I") {
		t.Fatalf("output file missing table:\n%s", data)
	}
}

// The benchmark CLI shares the grid-spec parsing with cmd/mfc: a
// descending range must be a usage error, and a custom ascending spec
// must drive the grid experiment.
func TestCLIGridSpecRanges(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	out, err := runCLI(t, "-exp", "grid", "-scale", "0.1", "-grid", "k=4..2,delta=1..3")
	if err == nil {
		t.Fatalf("descending grid range accepted:\n%s", out)
	}
	if !strings.Contains(out, "descending range") {
		t.Fatalf("missing usage error:\n%s", out)
	}
	out, err = runCLI(t, "-exp", "grid", "-scale", "0.1", "-grid", "k=2..3,delta=2..2")
	if err != nil {
		t.Fatalf("benchmark -exp grid -grid failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, `"grid_spec": "k=2..3,delta=2..2"`) || !strings.Contains(out, `"all_match": true`) {
		t.Fatalf("custom grid spec not honoured:\n%s", out)
	}
}

// -exp delta emits the dynamic-session record with both scenarios.
func TestCLIDeltaExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	out, err := runCLI(t, "-exp", "delta", "-scale", "0.1")
	if err != nil {
		t.Fatalf("benchmark -exp delta failed: %v\n%s", err, out)
	}
	for _, want := range []string{`"insert-shell-chord"`, `"delete-shell-edge"`, `"sizes_match": true`} {
		if !strings.Contains(out, want) {
			t.Fatalf("delta record missing %s:\n%s", want, out)
		}
	}
}
