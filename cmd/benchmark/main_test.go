package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

func TestCLIExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	for _, tc := range []struct {
		exp  string
		want string
	}{
		{"table1", "Table I"},
		{"fig8", "HeurRFC size"},
		{"fig4", "Fig. 4"},
	} {
		out, err := runCLI(t, "-exp", tc.exp, "-scale", "0.05", "-max-nodes", "1000000")
		if err != nil {
			t.Fatalf("benchmark -exp %s failed: %v\n%s", tc.exp, err, out)
		}
		if !strings.Contains(out, tc.want) {
			t.Fatalf("-exp %s output missing %q:\n%s", tc.exp, tc.want, out)
		}
	}
	if _, err := runCLI(t, "-exp", "nope"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestCLIOutFile(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	path := filepath.Join(t.TempDir(), "results.md")
	out, err := runCLI(t, "-exp", "table1", "-scale", "0.05", "-out", path)
	if err != nil {
		t.Fatalf("benchmark -out failed: %v\n%s", err, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table I") {
		t.Fatalf("output file missing table:\n%s", data)
	}
}
