// Command benchmark regenerates the paper's evaluation tables and
// figures (§VI) on the synthetic dataset stand-ins and prints them as
// Markdown. EXPERIMENTS.md is produced by piping this command's output.
//
// Usage:
//
//	benchmark                 # the full suite at scale 1.0
//	benchmark -exp fig4       # one experiment
//	benchmark -scale 0.25     # quarter-scale datasets (much faster)
//	benchmark -out results.md
//
// Experiments: table1, fig4, fig5, table2, fig6, fig7, fig8, fig9,
// casestudies, ablation, all. Eight extra experiments always emit JSON
// and feed BENCH_core.json, the repo's perf trajectory: "core"
// benchmarks the branch-and-bound engine itself (Workers 1 vs 4 on a
// single-giant-component graph), "grid" measures the multi-query
// session — a (k, δ) grid answered by one warm Session versus
// independent Find calls (-grid overrides the canonical 9 cells) —
// "delta" measures the dynamic session: a single-edge Apply plus
// requery on a warm Session versus NewSession plus requery on the
// mutated graph, "sched" measures the session-global work-stealing
// scheduler: the same grid serial, statically split and on the
// session-lifetime shared pool, plus a worker scaling curve
// (-workers-curve, default 1,2,4,8) and a speculation on/off ablation
// at W4 (-spec selects the headline mode; -min-speedup X exits 1
// unless the shared-pool W4/W1 speedup beats X — the bench-parallel CI
// gate), and "ingest" measures the
// paper-scale pipeline: SNAP text through the streaming CSR builder,
// the degeneracy pre-prune and the component-parallel reduction on the
// reproducible multi-million-edge instance (-max-mem-ratio gates the
// deterministic streaming high-water against the final CSR bytes,
// -min-speedup gates parallel-over-serial reduction, -graph-dir caches
// the generated SNAP pair), and "serve" load-tests the mfcd daemon's
// handler in process: concurrent query clients plus a mutator against
// one registered graph — qps, p50/p99 latency, result-cache hit rate,
// epoch churn and a served-vs-fresh differential, and "anytime"
// measures the gap-vs-budget curve: deadline-budgeted searches at
// fractions of the exact wall clock, each reporting its incumbent and
// certified optimality gap (hard-failing if a zero-deadline run is
// inexact or a budgeted run breaks the sandwich), and "enum" measures
// enumeration: the engine's collect-at-optimum KindEnumerateAll versus
// the Bron–Kerbosch all-optima baseline on the same cell — hard-failing
// unless both return the identical clique set — plus the diversified
// top-r cut, which must cover strictly more distinct vertices than the
// first-r baseline (-min-speedup gates the engine-over-baseline
// wall-clock ratio). Use -merge
// BENCH_core.json to embed the records; `make bench` runs all eight.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fairclique/internal/bench"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment to run")
		scale       = flag.Float64("scale", 1.0, "dataset scale factor")
		out         = flag.String("out", "", "output path (default stdout)")
		format      = flag.String("format", "markdown", "output format: markdown, json or chart (json/chart run the full suite)")
		maxNodes    = flag.Int64("max-nodes", 0, "branch-node cap per search (0 = unlimited)")
		baseline    = flag.String("baseline", "", "for -exp core: committed BENCH_core.json to diff against; exits 1 on a >10% nodes/sec regression")
		merge       = flag.String("merge", "", "for -exp grid/delta/sched: existing BENCH_core.json to embed the record into")
		gridSpec    = flag.String("grid", "", "for -exp grid/sched: override the cell spec, e.g. 'k=2..4,delta=1..3[,mode=weak|strong]'")
		minSpeedup  = flag.Float64("min-speedup", 0, "for -exp sched/ingest/enum: exit 1 unless the measured speedup strictly exceeds this (0 = no gate)")
		spec        = flag.String("spec", "on", "for -exp sched: speculation mode of the shared-pool measurements, on or off (the on/off ablation is recorded either way)")
		workersCrv  = flag.String("workers-curve", "", "for -exp sched: comma-separated worker counts of the scaling curve (default 1,2,4,8)")
		maxMemRatio = flag.Float64("max-mem-ratio", 0, "for -exp ingest: exit 1 unless the streaming peak stays under this multiple of the final CSR bytes (0 = no gate)")
		graphDir    = flag.String("graph-dir", "", "for -exp ingest: cache the generated SNAP instance pair in this directory")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	cfg := bench.Config{Scale: *scale, Out: w, MaxNodes: *maxNodes, GridSpec: *gridSpec, SchedSpec: *spec}
	if *workersCrv != "" {
		for _, f := range strings.Split(*workersCrv, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "benchmark: bad -workers-curve entry %q\n", f)
				os.Exit(2)
			}
			cfg.SchedWorkersCurve = append(cfg.SchedWorkersCurve, n)
		}
	}

	start := time.Now()
	if *exp == "core" {
		// The engine benchmark is JSON-only regardless of -format: it is
		// a machine-readable perf record, not a paper table.
		if err := bench.WriteCoreBench(cfg, w, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchmark: core engine bench finished in %v\n", time.Since(start))
		return
	}
	if *exp == "grid" {
		// The multi-query amortization experiment: one session FindGrid
		// versus independent Find calls on the same (k, δ) grid (-grid
		// overrides the canonical 9 cells). JSON-only; -merge embeds it
		// into the committed core record.
		if err := bench.WriteGridBench(cfg, w, *merge); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchmark: grid session bench finished in %v\n", time.Since(start))
		return
	}
	if *exp == "delta" {
		// The dynamic-session experiment: single-edge Apply+requery on a
		// warm session versus NewSession+requery on the mutated graph.
		// JSON-only; -merge embeds it under "delta".
		if err := bench.WriteDeltaBench(cfg, w, *merge); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchmark: delta session bench finished in %v\n", time.Since(start))
		return
	}
	if *exp == "sched" {
		// The session-global scheduler experiment: the grid serial vs
		// static split vs shared work-stealing pool. JSON-only; -merge
		// embeds it under "sched"; -min-speedup is the CI parallel gate.
		if err := bench.WriteSchedBench(cfg, w, *merge, *minSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchmark: sched scheduler bench finished in %v\n", time.Since(start))
		return
	}
	if *exp == "enum" {
		// The enumeration experiment: session KindEnumerateAll versus
		// the BK all-optima baseline (identical-set verified) plus the
		// diversified top-r coverage win. JSON-only; -merge embeds it
		// under "enum"; -min-speedup gates the engine-over-baseline
		// wall-clock ratio.
		if err := bench.WriteEnumBench(cfg, w, *merge, *minSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchmark: enum bench finished in %v\n", time.Since(start))
		return
	}
	if *exp == "serve" {
		// The daemon load experiment: an in-process load generator
		// drives the serve handler with concurrent query clients and a
		// mutator — qps, p50/p99, cache hit rate, epoch churn, plus a
		// served-vs-fresh differential. JSON-only; -merge embeds it
		// under "serve".
		if err := bench.WriteServeBench(cfg, w, *merge); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchmark: serve daemon bench finished in %v\n", time.Since(start))
		return
	}
	if *exp == "anytime" {
		// The anytime-search experiment: the gap-vs-budget curve on the
		// core instance — deadline runs at fractions of the exact wall
		// clock, each with its certified optimality gap. Hard-fails if
		// the zero-deadline run reports inexact or any point breaks the
		// incumbent <= optimum <= certificate sandwich. JSON-only;
		// -merge embeds it under "anytime".
		if err := bench.WriteAnytimeBench(cfg, w, *merge); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchmark: anytime search bench finished in %v\n", time.Since(start))
		return
	}
	if *exp == "ingest" {
		// The paper-scale ingest experiment: streaming CSR build from
		// SNAP text, degeneracy pre-prune and component-parallel
		// reduction. JSON-only; -merge embeds it under "ingest";
		// -max-mem-ratio and -min-speedup are the CI gates.
		if err := bench.WriteIngestBench(cfg, w, *merge, *minSpeedup, *maxMemRatio, *graphDir); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchmark: ingest pipeline bench finished in %v\n", time.Since(start))
		return
	}
	switch *format {
	case "json":
		if err := bench.WriteJSON(cfg, w); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchmark: json suite finished in %v\n", time.Since(start))
		return
	case "chart":
		bench.RunCharts(cfg)
		fmt.Fprintf(os.Stderr, "benchmark: chart suite finished in %v\n", time.Since(start))
		return
	case "markdown":
	default:
		fmt.Fprintf(os.Stderr, "benchmark: unknown format %q\n", *format)
		os.Exit(2)
	}
	switch *exp {
	case "all":
		bench.RunAll(cfg)
	case "table1":
		bench.TableI(cfg)
	case "fig4":
		bench.Fig4(cfg)
	case "fig5":
		bench.Fig5(cfg)
	case "table2":
		bench.Table2(cfg)
	case "fig6":
		bench.Fig6(cfg)
	case "fig7":
		bench.Fig7(cfg)
	case "fig8":
		bench.Fig8(cfg)
	case "fig9":
		bench.Fig9(cfg)
	case "casestudies":
		bench.RunCaseStudies(cfg)
	case "ablation":
		bench.Ablation(cfg)
	default:
		fmt.Fprintf(os.Stderr, "benchmark: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchmark: %s finished in %v\n", *exp, time.Since(start))
}
