package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fairclique"
	"fairclique/internal/graph"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

func TestCLIList(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatalf("gengraph -list failed: %v\n%s", err, out)
	}
	for _, name := range []string{"themarker-sim", "google-sim", "dblp-sim", "flixster-sim", "pokec-sim", "aminer-sim"} {
		if !strings.Contains(out, name) {
			t.Fatalf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestCLIModels(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	for _, tc := range [][]string{
		{"-model", "er", "-n", "50", "-m", "100"},
		{"-model", "ba", "-n", "60", "-m", "3"},
		{"-model", "ws", "-n", "40", "-m", "2"},
		{"-model", "team", "-n", "80", "-teams", "40"},
		{"-model", "sbm", "-n", "60", "-blocks", "3", "-pin", "0.3", "-pout", "0.01"},
		{"-dataset", "dblp-sim", "-scale", "0.05"},
	} {
		path := filepath.Join(dir, "g.txt")
		args := append(tc, "-out", path)
		out, err := runCLI(t, args...)
		if err != nil {
			t.Fatalf("gengraph %v failed: %v\n%s", tc, err, out)
		}
		g, err := fairclique.ReadGraphFile(path)
		if err != nil {
			t.Fatalf("output of %v unreadable: %v", tc, err)
		}
		if g.N() == 0 {
			t.Fatalf("%v produced an empty graph", tc)
		}
		os.Remove(path)
	}
	if _, err := runCLI(t, "-model", "bigcomp", "-n", "1000"); err == nil {
		t.Fatal("bigcomp below the 4096-vertex cap should fail")
	}
	if _, err := runCLI(t, "-model", "nope"); err == nil {
		t.Fatal("unknown model should fail")
	}
	if _, err := runCLI(t, "-dataset", "nope"); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if _, err := runCLI(t); err == nil {
		t.Fatal("no arguments should fail with usage")
	}
}

// The bigcomp preset must emit a reproducible single-component instance
// that crosses the 4096-vertex chunk boundary — the instance class the
// chunked engine's cap-lift tests and benchmarks rely on.
func TestCLIBigComponentPreset(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	args := []string{"-model", "bigcomp", "-n", "4300", "-core", "60", "-seed", "3"}
	p1 := filepath.Join(dir, "a.txt")
	p2 := filepath.Join(dir, "b.txt")
	for _, p := range []string{p1, p2} {
		if out, err := runCLI(t, append(args, "-out", p)...); err != nil {
			t.Fatalf("gengraph bigcomp failed: %v\n%s", err, out)
		}
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("bigcomp output not reproducible across runs")
	}
	g, err := graph.Read(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() <= 4096 {
		t.Fatalf("bigcomp emitted %d vertices; want > 4096", g.N())
	}
	if comps := graph.ConnectedComponents(g); len(comps) != 1 {
		t.Fatalf("bigcomp emitted %d components; want 1", len(comps))
	}
}
