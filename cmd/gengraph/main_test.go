package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fairclique"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

func TestCLIList(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatalf("gengraph -list failed: %v\n%s", err, out)
	}
	for _, name := range []string{"themarker-sim", "google-sim", "dblp-sim", "flixster-sim", "pokec-sim", "aminer-sim"} {
		if !strings.Contains(out, name) {
			t.Fatalf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestCLIModels(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	dir := t.TempDir()
	for _, tc := range [][]string{
		{"-model", "er", "-n", "50", "-m", "100"},
		{"-model", "ba", "-n", "60", "-m", "3"},
		{"-model", "ws", "-n", "40", "-m", "2"},
		{"-model", "team", "-n", "80", "-teams", "40"},
		{"-model", "sbm", "-n", "60", "-blocks", "3", "-pin", "0.3", "-pout", "0.01"},
		{"-dataset", "dblp-sim", "-scale", "0.05"},
	} {
		path := filepath.Join(dir, "g.txt")
		args := append(tc, "-out", path)
		out, err := runCLI(t, args...)
		if err != nil {
			t.Fatalf("gengraph %v failed: %v\n%s", tc, err, out)
		}
		g, err := fairclique.ReadGraphFile(path)
		if err != nil {
			t.Fatalf("output of %v unreadable: %v", tc, err)
		}
		if g.N() == 0 {
			t.Fatalf("%v produced an empty graph", tc)
		}
		os.Remove(path)
	}
	if _, err := runCLI(t, "-model", "nope"); err == nil {
		t.Fatal("unknown model should fail")
	}
	if _, err := runCLI(t, "-dataset", "nope"); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if _, err := runCLI(t); err == nil {
		t.Fatal("no arguments should fail with usage")
	}
}
