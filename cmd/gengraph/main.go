// Command gengraph writes deterministic synthetic attributed graphs in
// the fairclique text format: either one of the named benchmark
// stand-ins, or a raw model with explicit parameters.
//
// Usage:
//
//	gengraph -dataset dblp-sim -scale 0.5 -out g.txt
//	gengraph -model ba -n 5000 -m 8 -seed 7 -out g.txt
//	gengraph -model er -n 1000 -m 5000 -out g.txt
//	gengraph -model rmat -scale-exp 18 -edges 2000000 -out g.snap -format snap -attrs-out g.attrs
//	gengraph -model ingest -scale 1.0 -format snap -out g.snap -attrs-out g.attrs
//	gengraph -model team -n 4000 -teams 3000 -mean 4 -out g.txt
//	gengraph -model bigcomp -n 5200 -core 230 -corep 0.5 -out g.txt
//	gengraph -list
//
// The rmat model draws power-law R-MAT samples and normalizes them
// through the streaming CSR builder (self-loops dropped, duplicates
// merged, sparse id space densified) — the scalable generator for
// multi-million-edge instances. The ingest model is the canonical
// paper-scale benchmark instance (see gen.IngestGiant). With
// -format snap the graph is written as a SNAP edge list, and
// -attrs-out writes the companion attribute file.
//
// The bigcomp model emits a single connected component guaranteed to
// exceed 4096 vertices (a dense nucleus welded to a long alternating
// cycle), the instance class the chunked branch-and-bound engine and
// its benchmarks use to exercise multi-chunk candidate rows.
package main

import (
	"flag"
	"fmt"
	"os"

	"fairclique/datasets"
	"fairclique/internal/gen"
	"fairclique/internal/graph"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "named benchmark stand-in (see -list)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		model    = flag.String("model", "", "raw model: er, ba, ws, team, sbm, bigcomp, rmat, ingest")
		n        = flag.Int("n", 1000, "number of vertices")
		m        = flag.Int("m", 4, "edges (er: total; ba: per vertex; ws: half-neighbourhood)")
		teams    = flag.Int("teams", 800, "team count (team model)")
		mean     = flag.Float64("mean", 4, "mean team size (team model)")
		beta     = flag.Float64("beta", 0.1, "rewire probability (ws model)")
		blocks   = flag.Int("blocks", 10, "community count (sbm model)")
		core     = flag.Int("core", 230, "dense nucleus size (bigcomp model)")
		corep    = flag.Float64("corep", 0.5, "nucleus edge probability (bigcomp model)")
		pin      = flag.Float64("pin", 0.1, "intra-community probability (sbm)")
		pout     = flag.Float64("pout", 0.001, "inter-community probability (sbm)")
		pA       = flag.Float64("pa", 0.5, "probability of attribute a")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("out", "", "output path (default stdout)")
		list     = flag.Bool("list", false, "list named datasets and exit")
		scaleExp = flag.Uint("scale-exp", 18, "log2 of the rmat vertex id space")
		edges    = flag.Int64("edges", 1_000_000, "rmat edge samples to draw")
		format   = flag.String("format", "text", "output format: text or snap")
		attrsOut = flag.String("attrs-out", "", "companion attribute file (snap format)")
	)
	flag.Parse()

	if *list {
		for _, name := range datasets.Names() {
			info, _ := datasets.Describe(name)
			fmt.Printf("%-16s %s (k sweep %v, defaults k=%d δ=%d)\n",
				info.Name, info.Description, info.Ks, info.DefaultK, info.DefaultDelta)
		}
		return
	}

	var g *graph.Graph
	switch {
	case *dataset != "":
		d, err := gen.DatasetByName(*dataset)
		if err != nil {
			fatal(err)
		}
		g = d.Build(*scale)
	case *model == "bigcomp":
		// Attributes are part of the model (alternating shell), so the
		// uniform assignment below is skipped.
		shell := *n - *core
		if *n <= graph.ChunkBits {
			fatal(fmt.Errorf("bigcomp needs -n > %d so the component crosses the chunk boundary (got -n %d)", graph.ChunkBits, *n))
		}
		if *core < 3 {
			fatal(fmt.Errorf("bigcomp needs -core >= 3 for the nucleus (got -core %d)", *core))
		}
		if shell < 3 {
			fatal(fmt.Errorf("bigcomp needs -n >= -core + 3 for the cycle shell (got -n %d, -core %d)", *n, *core))
		}
		g = gen.BigComponent(*seed, *core, *corep, shell)
	case *model != "":
		var base *graph.Graph
		switch *model {
		case "er":
			base = gen.ErdosRenyi(*seed, *n, *m)
		case "ba":
			base = gen.BarabasiAlbert(*seed, *n, *m)
		case "ws":
			base = gen.WattsStrogatz(*seed, *n, *m, *beta)
		case "team":
			base = gen.TeamGraph(*seed, *n, *teams, *mean)
		case "sbm":
			sizes := make([]int, *blocks)
			for i := range sizes {
				sizes[i] = *n / *blocks
			}
			base = gen.SBM(*seed, sizes, *pin, *pout)
		case "rmat":
			var st *graph.StreamStats
			var err error
			base, st, err = gen.RMATGraph(*seed, *scaleExp, *edges, 0, 0, 0, *pA, graph.StreamConfig{})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "gengraph: rmat stream: %d read, %d loops, %d dups, %d runs spilled\n",
				st.EdgesRead, st.SelfLoops, st.Duplicates, st.RunsSpilled)
			g = base
		case "ingest":
			g = gen.IngestGiant(*seed, *scale)
		default:
			fatal(fmt.Errorf("unknown model %q", *model))
		}
		if g == nil {
			g = gen.AssignUniform(*seed+1, base, *pA)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		if err := graph.Write(w, g); err != nil {
			fatal(err)
		}
	case "snap":
		if err := graph.WriteSNAP(w, g); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q (want text or snap)", *format))
	}
	if *attrsOut != "" {
		f, err := os.Create(*attrsOut)
		if err != nil {
			fatal(err)
		}
		if err := graph.WriteSNAPAttrs(f, g); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "gengraph: wrote %d vertices, %d edges\n", g.N(), g.M())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
