// Command mfcd is the maximum-fair-clique daemon: an HTTP/JSON server
// over a multi-tenant registry of named graphs, each a live dynamic
// Session. See internal/serve for the endpoint semantics (write-buffer
// coalescing, epoch-keyed result cache, prioritized admission) and
// ARCHITECTURE.md for a curl walkthrough.
//
// Usage:
//
//	mfcd -addr :8080
//	mfcd -addr 127.0.0.1:0 -ready-file /tmp/mfcd.addr   # CI: random port
//	mfcd -allow-paths -graph web=graph.txt              # preload from disk
//
// Admission control:
//
//	mfcd -max-inflight 8 -max-per-client 2 \
//	     -blacklist crawler1,crawler2 -priority dashboard=10,batch=-5
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fairclique"
	"fairclique/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (port 0 = random)")
		readyFile    = flag.String("ready-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		workers      = flag.Int("workers", 0, "per-session branching parallelism (0 = serial)")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = default)")
		maxPerClient = flag.Int("max-per-client", 0, "max in-flight+queued queries per client (0 = no cap)")
		blacklist    = flag.String("blacklist", "", "comma-separated client ids rejected with 403")
		priority     = flag.String("priority", "", "comma-separated client=prio admission priorities (higher first)")
		maxVertices  = flag.Int("max-vertices", 0, "upload limit on vertex ids (0 = default)")
		maxEdges     = flag.Int("max-edges", 0, "upload limit on edge count (0 = default)")
		maxBody      = flag.Int64("max-body", 0, "request body byte cap (0 = default)")
		allowPaths   = flag.Bool("allow-paths", false, "allow creating graphs from server-side file paths")
		maxBuffered  = flag.Int("max-buffered-ops", 0, "write-buffer size that forces a flush (0 = default)")
	)
	var preload preloadFlags
	flag.Var(&preload, "graph", "preload a graph: name=path or name=edges.txt:attrs.txt (SNAP); repeatable")
	flag.Parse()

	prio, err := parsePriorities(*priority)
	if err != nil {
		fatal(err)
	}
	cfg := serve.Config{
		Workers:         *workers,
		MaxInFlight:     *maxInFlight,
		MaxPerClient:    *maxPerClient,
		Blacklist:       splitList(*blacklist),
		Priorities:      prio,
		MaxVertices:     *maxVertices,
		MaxEdges:        *maxEdges,
		MaxBodyBytes:    *maxBody,
		AllowPathCreate: *allowPaths,
		MaxBufferedOps:  *maxBuffered,
	}
	srv := serve.New(cfg)

	for _, p := range preload {
		g, err := loadGraph(p.path)
		if err != nil {
			fatal(fmt.Errorf("preload %s: %w", p.name, err))
		}
		e, err := srv.Registry().Create(p.name, g)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mfcd: loaded graph %q: %d vertices, %d edges\n",
			p.name, e.Session().N(), e.Session().M())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(bound), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "mfcd: listening on %s\n", bound)

	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "mfcd: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
		srv.Registry().Close() // release every session's lifetime worker pool
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// preloadFlags collects repeated -graph name=path flags.
type preloadFlags []struct{ name, path string }

func (p *preloadFlags) String() string { return fmt.Sprintf("%d graphs", len(*p)) }

func (p *preloadFlags) Set(s string) error {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", s)
	}
	*p = append(*p, struct{ name, path string }{name, path})
	return nil
}

// loadGraph reads path as "edges.txt:attrs.txt" (SNAP pair) or a
// single text-format file.
func loadGraph(path string) (*fairclique.Graph, error) {
	if edges, attrs, ok := strings.Cut(path, ":"); ok {
		return fairclique.ReadSNAPFiles(edges, attrs)
	}
	return fairclique.ReadGraphFile(path)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func parsePriorities(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		client, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mfcd: -priority wants client=prio, got %q", part)
		}
		p, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("mfcd: -priority %q: %w", part, err)
		}
		out[client] = p
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mfcd:", err)
	os.Exit(1)
}
