package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fairclique"
)

func TestBoundNamesComplete(t *testing.T) {
	want := []string{"ad", "deg", "h", "cd", "ch", "cp"}
	for _, name := range want {
		if _, ok := boundNames[name]; !ok {
			t.Errorf("bound %q missing", name)
		}
	}
	if len(boundNames) != len(want) {
		t.Errorf("%d bounds registered; want %d", len(boundNames), len(want))
	}
}

func TestReportFormatting(t *testing.T) {
	g := fairclique.NewGraph(3)
	// Capture stdout.
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	report(g, []int{2, 0, 1}, false, 1500*time.Microsecond)
	report(g, nil, false, time.Millisecond)
	report(g, []int{0, 1}, true, time.Millisecond)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	buf.ReadFrom(r)
	out := buf.String()
	if !strings.Contains(out, "size 3") || !strings.Contains(out, "[0 1 2]") {
		t.Fatalf("report output %q", out)
	}
	if !strings.Contains(out, "no fair clique exists") {
		t.Fatalf("nil-clique output missing: %q", out)
	}
	if !strings.Contains(out, "\n2\n") {
		t.Fatalf("quiet output missing: %q", out)
	}
}

// writeFixture stores a balanced K6 plus a pendant in the text format.
func writeFixture(t *testing.T) string {
	t.Helper()
	g := fairclique.NewGraph(7)
	for v := 0; v < 6; v++ {
		g.SetAttr(v, fairclique.Attr(v%2))
	}
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			g.AddEdge(u, v)
		}
	}
	g.AddEdge(6, 0)
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fairclique.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

// runCLI executes this command via `go run .` — a real end-to-end test
// of flag parsing, IO and output.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

func TestCLISearch(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	path := writeFixture(t)
	out, err := runCLI(t, "-graph", path, "-k", "3", "-delta", "0")
	if err != nil {
		t.Fatalf("mfc failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "size 6") {
		t.Fatalf("expected size 6 in output:\n%s", out)
	}
	if !strings.Contains(out, "attribute counts: 3 a, 3 b") {
		t.Fatalf("expected balanced counts:\n%s", out)
	}
}

func TestCLIModes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	path := writeFixture(t)
	for _, args := range [][]string{
		{"-graph", path, "-k", "3", "-delta", "0", "-heuristic"},
		{"-graph", path, "-k", "3", "-delta", "0", "-enum"},
		{"-graph", path, "-k", "3", "-reduce"},
		{"-graph", path, "-k", "3", "-delta", "0", "-q"},
		{"-graph", path, "-k", "3", "-delta", "0", "-no-heur", "-no-bounds", "-bound", "cp"},
	} {
		out, err := runCLI(t, args...)
		if err != nil {
			t.Fatalf("mfc %v failed: %v\n%s", args, err, out)
		}
	}
	// Error paths exit non-zero.
	if _, err := runCLI(t, "-graph", path, "-bound", "nope"); err == nil {
		t.Fatal("unknown bound should fail")
	}
	if _, err := runCLI(t, "-graph", path+".missing"); err == nil {
		t.Fatal("missing file should fail")
	}
}
