package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fairclique"
)

func TestBoundNamesComplete(t *testing.T) {
	want := []string{"ad", "deg", "h", "cd", "ch", "cp"}
	for _, name := range want {
		if _, ok := boundNames[name]; !ok {
			t.Errorf("bound %q missing", name)
		}
	}
	if len(boundNames) != len(want) {
		t.Errorf("%d bounds registered; want %d", len(boundNames), len(want))
	}
}

func TestReportFormatting(t *testing.T) {
	g := fairclique.NewGraph(3)
	// Capture stdout.
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	report(g, []int{2, 0, 1}, false, 1500*time.Microsecond)
	report(g, nil, false, time.Millisecond)
	report(g, []int{0, 1}, true, time.Millisecond)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	buf.ReadFrom(r)
	out := buf.String()
	if !strings.Contains(out, "size 3") || !strings.Contains(out, "[0 1 2]") {
		t.Fatalf("report output %q", out)
	}
	if !strings.Contains(out, "no fair clique exists") {
		t.Fatalf("nil-clique output missing: %q", out)
	}
	if !strings.Contains(out, "\n2\n") {
		t.Fatalf("quiet output missing: %q", out)
	}
}

// writeFixture stores a balanced K6 plus a pendant in the text format.
func writeFixture(t *testing.T) string {
	t.Helper()
	g := fairclique.NewGraph(7)
	for v := 0; v < 6; v++ {
		g.SetAttr(v, fairclique.Attr(v%2))
	}
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			g.AddEdge(u, v)
		}
	}
	g.AddEdge(6, 0)
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fairclique.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

// runCLI executes this command via `go run .` — a real end-to-end test
// of flag parsing, IO and output.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

func TestCLISearch(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	path := writeFixture(t)
	out, err := runCLI(t, "-graph", path, "-k", "3", "-delta", "0")
	if err != nil {
		t.Fatalf("mfc failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "size 6") {
		t.Fatalf("expected size 6 in output:\n%s", out)
	}
	if !strings.Contains(out, "attribute counts: 3 a, 3 b") {
		t.Fatalf("expected balanced counts:\n%s", out)
	}
}

func TestParseGrid(t *testing.T) {
	specs, err := parseGrid("k=2..4,delta=1..3")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 9 {
		t.Fatalf("k=2..4,delta=1..3 expanded to %d cells, want 9", len(specs))
	}
	if specs[0] != (fairclique.QuerySpec{K: 2, Delta: 1}) {
		t.Fatalf("first cell %+v", specs[0])
	}
	if specs[8] != (fairclique.QuerySpec{K: 4, Delta: 3}) {
		t.Fatalf("last cell %+v", specs[8])
	}

	specs, err = parseGrid("k=1..3,mode=weak")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[1].Mode != fairclique.ModeWeak {
		t.Fatalf("weak grid: %+v", specs)
	}

	specs, err = parseGrid("k=2,delta=0,mode=strong")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Mode != fairclique.ModeStrong {
		t.Fatalf("strong grid: %+v", specs)
	}

	for _, bad := range []string{"k=2..1", "k=x", "delta", "mode=fuzzy", "q=3"} {
		if _, err := parseGrid(bad); err == nil {
			t.Fatalf("parseGrid(%q) should fail", bad)
		}
	}
}

// The grid CLI must answer each cell with the size a single-query run
// reports: the balanced K6 fixture has a 6-clique at (k<=3, δ=0), so
// every cell of k=2..3, δ=0..1 is 6.
func TestCLIGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	path := writeFixture(t)
	out, err := runCLI(t, "-graph", path, "-grid", "k=2..3,delta=0..1")
	if err != nil {
		t.Fatalf("mfc -grid failed: %v\n%s", err, out)
	}
	if strings.Count(out, "size  6") != 4 {
		t.Fatalf("expected four size-6 cells:\n%s", out)
	}
	if !strings.Contains(out, "grid: 4 cells") || !strings.Contains(out, "session:") {
		t.Fatalf("missing grid summary:\n%s", out)
	}
	// Quiet mode prints one size per line.
	out, err = runCLI(t, "-graph", path, "-grid", "k=2..3,delta=0..1", "-q")
	if err != nil {
		t.Fatalf("mfc -grid -q failed: %v\n%s", err, out)
	}
	if strings.Count(out, "6") != 4 {
		t.Fatalf("quiet grid output:\n%s", out)
	}
	// Bad grid specs exit non-zero.
	if _, err := runCLI(t, "-graph", path, "-grid", "k=oops"); err == nil {
		t.Fatal("bad grid spec should fail")
	}
}

func TestCLIModes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	path := writeFixture(t)
	for _, args := range [][]string{
		{"-graph", path, "-k", "3", "-delta", "0", "-heuristic"},
		{"-graph", path, "-k", "3", "-delta", "0", "-enum"},
		{"-graph", path, "-k", "3", "-reduce"},
		{"-graph", path, "-k", "3", "-delta", "0", "-q"},
		{"-graph", path, "-k", "3", "-delta", "0", "-no-heur", "-no-bounds", "-bound", "cp"},
	} {
		out, err := runCLI(t, args...)
		if err != nil {
			t.Fatalf("mfc %v failed: %v\n%s", args, err, out)
		}
	}
	// Error paths exit non-zero.
	if _, err := runCLI(t, "-graph", path, "-bound", "nope"); err == nil {
		t.Fatal("unknown bound should fail")
	}
	if _, err := runCLI(t, "-graph", path+".missing"); err == nil {
		t.Fatal("missing file should fail")
	}
}

// The grid range parsing — shared with cmd/benchmark through
// internal/cli — must reject descending and empty ranges with a usage
// error rather than expanding to a silently empty (or wrong) grid.
func TestParseGridRejectsMalformedRanges(t *testing.T) {
	cases := []string{
		"k=4..2,delta=1..3", // descending k
		"k=2..4,delta=3..1", // descending delta
		"k=..4", "k=2..", "k=..", "delta=..2",
		"k=", "delta=x..2", "k=2..y",
	}
	for _, spec := range cases {
		if specs, err := parseGrid(spec); err == nil {
			t.Errorf("parseGrid(%q) yielded %d cells, want usage error", spec, len(specs))
		}
	}
}

// End to end: a descending range must exit non-zero with the usage
// error on stderr, never print an empty grid.
func TestCLIGridDescendingRange(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	path := writeFixture(t)
	out, err := runCLI(t, "-graph", path, "-grid", "k=4..2,delta=1..3")
	if err == nil {
		t.Fatalf("descending range accepted:\n%s", out)
	}
	if !strings.Contains(out, "descending range") {
		t.Fatalf("missing usage error:\n%s", out)
	}
}

// The -apply flow answers, mutates, re-answers: deleting a K6 edge
// drops the optimum from 6 to 5, and the session must say what it
// retained.
func TestCLIApply(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	path := writeFixture(t)
	out, err := runCLI(t, "-graph", path, "-k", "2", "-delta", "1", "-apply", "-e:0:1")
	if err != nil {
		t.Fatalf("mfc -apply failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "before delta:") || !strings.Contains(out, "after delta") {
		t.Fatalf("missing before/after sections:\n%s", out)
	}
	if !strings.Contains(out, "size  6") || !strings.Contains(out, "size  5") {
		t.Fatalf("expected optimum 6 -> 5:\n%s", out)
	}
	if !strings.Contains(out, "retained:") || !strings.Contains(out, "dynamic: 1 applies") {
		t.Fatalf("missing invalidation accounting:\n%s", out)
	}
	// Malformed delta specs are usage errors.
	if _, err := runCLI(t, "-graph", path, "-apply", "+e:1"); err == nil {
		t.Fatal("malformed delta spec should fail")
	}
}

// The REPL interleaves queries and deltas on one session.
func TestCLIREPL(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	path := writeFixture(t)
	cmd := exec.Command("go", "run", ".", "-graph", path, "-repl")
	cmd.Stdin = strings.NewReader("find 2 1\napply -e:0:1\nfind 2 1\nstats\nquit\n")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("mfc -repl failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "size  6") || !strings.Contains(s, "size  5") {
		t.Fatalf("REPL answers wrong:\n%s", s)
	}
	if !strings.Contains(s, "epoch 1:") || !strings.Contains(s, "dynamic: 1 applies") {
		t.Fatalf("REPL apply/stats output missing:\n%s", s)
	}
}
