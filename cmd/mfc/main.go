// Command mfc finds a maximum relative fair clique in an attributed
// graph file (the text format documented in the fairclique package:
// "v <id> <a|b>" and "e <u> <v>" records, or plain edge lists).
//
// Usage:
//
//	mfc -graph g.txt -k 3 -delta 1 [-bound cd] [-no-heur] [-no-bounds]
//	mfc -graph g.txt -k 3 -delta 1 -heuristic    # linear-time HeurRFC only
//	mfc -graph g.txt -k 3 -reduce                # reduction pipeline only
//	mfc -graph g.txt -k 3 -delta 1 -enum         # Bron-Kerbosch baseline
//	mfc -graph g.txt -grid 'k=2..4,delta=1..3'   # multi-query session grid
//
// The -grid form answers every (k, δ) cell of the given ranges through
// one warm fairclique.Session, so the reduction, ordering and successor
// masks are built once and the cells warm-start each other. A
// mode=weak or mode=strong entry switches the whole grid to that
// fairness model (the delta range is then ignored).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"fairclique"
)

var boundNames = map[string]fairclique.UpperBound{
	"ad":  fairclique.UBAdvanced,
	"deg": fairclique.UBDegeneracy,
	"h":   fairclique.UBHIndex,
	"cd":  fairclique.UBColorfulDegeneracy,
	"ch":  fairclique.UBColorfulHIndex,
	"cp":  fairclique.UBColorfulPath,
}

func main() {
	var (
		graphPath  = flag.String("graph", "", "path to the attributed graph file (required)")
		k          = flag.Int("k", 2, "per-attribute minimum count")
		delta      = flag.Int("delta", 1, "maximum attribute-count difference")
		bound      = flag.String("bound", "cd", "extra upper bound: ad, deg, h, cd, ch, cp")
		noHeur     = flag.Bool("no-heur", false, "disable HeurRFC seeding")
		noBounds   = flag.Bool("no-bounds", false, "disable upper-bound pruning (plain MaxRFC)")
		noReduce   = flag.Bool("no-reduce", false, "skip the reduction pipeline")
		heurOnly   = flag.Bool("heuristic", false, "run only the linear-time heuristic")
		reduceOnly = flag.Bool("reduce", false, "run only the reduction pipeline and report sizes")
		enumerate  = flag.Bool("enum", false, "use the Bron-Kerbosch enumeration baseline")
		maxNodes   = flag.Int64("max-nodes", 0, "abort after this many branch nodes (0 = unlimited)")
		workers    = flag.Int("workers", 1, "parallel branching workers (root branches are split inside each component)")
		grid       = flag.String("grid", "", "answer a (k, delta) grid on one warm session, e.g. 'k=2..4,delta=1..3[,mode=weak|strong]'")
		quiet      = flag.Bool("q", false, "print only the clique size")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := fairclique.ReadGraphFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())
	}

	if *grid != "" {
		ub, ok := boundNames[*bound]
		if !ok {
			fatal(fmt.Errorf("unknown bound %q (want ad, deg, h, cd, ch or cp)", *bound))
		}
		specs, err := parseGrid(*grid)
		if err != nil {
			fatal(err)
		}
		runGrid(g, specs, fairclique.SessionOptions{
			Bound:            ub,
			DisableBounds:    *noBounds,
			DisableHeuristic: *noHeur,
			DisableReduction: *noReduce,
			MaxNodes:         *maxNodes,
			Workers:          *workers,
		}, *quiet)
		return
	}

	switch {
	case *reduceOnly:
		kept, stages, err := fairclique.Reduce(g, *k)
		if err != nil {
			fatal(err)
		}
		for _, s := range stages {
			fmt.Printf("%-16s %8d vertices %10d edges\n", s.Stage, s.Vertices, s.Edges)
		}
		fmt.Printf("kept %d vertices\n", len(kept))
		return

	case *heurOnly:
		start := time.Now()
		clique, ub, err := fairclique.Heuristic(g, *k, *delta)
		if err != nil {
			fatal(err)
		}
		report(g, clique, *quiet, time.Since(start))
		if !*quiet {
			fmt.Printf("upper bound: %d\n", ub)
		}
		return

	case *enumerate:
		start := time.Now()
		clique, err := fairclique.Enumerate(g, *k, *delta)
		if err != nil {
			fatal(err)
		}
		report(g, clique, *quiet, time.Since(start))
		return
	}

	ub, ok := boundNames[*bound]
	if !ok {
		fatal(fmt.Errorf("unknown bound %q (want ad, deg, h, cd, ch or cp)", *bound))
	}
	opt := fairclique.Options{
		K:                *k,
		Delta:            *delta,
		Bound:            ub,
		DisableBounds:    *noBounds,
		DisableHeuristic: *noHeur,
		DisableReduction: *noReduce,
		MaxNodes:         *maxNodes,
		Workers:          *workers,
	}
	start := time.Now()
	res, err := fairclique.Find(g, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	report(g, res.Clique, *quiet, elapsed)
	if !*quiet {
		fmt.Printf("attribute counts: %d a, %d b\n", res.CountA, res.CountB)
		fmt.Printf("reduced graph: %d vertices, %d edges\n",
			res.Stats.ReducedVertices, res.Stats.ReducedEdges)
		fmt.Printf("search: %d nodes, %d bound checks, %d bound prunes, heuristic seed %d\n",
			res.Stats.Nodes, res.Stats.BoundChecks, res.Stats.BoundPrunes, res.Stats.HeuristicSize)
		if !res.Exact {
			fmt.Println("WARNING: search aborted by -max-nodes; result may be sub-optimal")
		}
	}
}

func report(g *fairclique.Graph, clique []int, quiet bool, elapsed time.Duration) {
	if quiet {
		fmt.Println(len(clique))
		return
	}
	if clique == nil {
		fmt.Printf("no fair clique exists (%.2f ms)\n", float64(elapsed.Microseconds())/1000)
		return
	}
	sorted := append([]int(nil), clique...)
	sort.Ints(sorted)
	fmt.Printf("maximum fair clique: size %d (%.2f ms)\n", len(clique), float64(elapsed.Microseconds())/1000)
	fmt.Printf("vertices: %v\n", sorted)
}

// parseRange parses "2" or "2..4" into an inclusive [lo, hi].
func parseRange(s string) (lo, hi int, err error) {
	if a, b, ok := strings.Cut(s, ".."); ok {
		lo, err = strconv.Atoi(a)
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q", s)
		}
		hi, err = strconv.Atoi(b)
		if err != nil || hi < lo {
			return 0, 0, fmt.Errorf("bad range %q", s)
		}
		return lo, hi, nil
	}
	lo, err = strconv.Atoi(s)
	if err != nil {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	return lo, lo, nil
}

// parseGrid expands a grid spec like "k=2..4,delta=1..3" (optionally
// "mode=weak|strong|relative") into the cross product of query cells.
func parseGrid(spec string) ([]fairclique.QuerySpec, error) {
	kLo, kHi := 2, 2
	dLo, dHi := 1, 1
	mode := fairclique.ModeRelative
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("grid: expected key=value, got %q", part)
		}
		var err error
		switch key {
		case "k":
			kLo, kHi, err = parseRange(val)
		case "delta":
			dLo, dHi, err = parseRange(val)
		case "mode":
			switch val {
			case "relative":
				mode = fairclique.ModeRelative
			case "weak":
				mode = fairclique.ModeWeak
			case "strong":
				mode = fairclique.ModeStrong
			default:
				err = fmt.Errorf("grid: unknown mode %q (want relative, weak or strong)", val)
			}
		default:
			err = fmt.Errorf("grid: unknown key %q (want k, delta or mode)", key)
		}
		if err != nil {
			return nil, err
		}
	}
	var specs []fairclique.QuerySpec
	for k := kLo; k <= kHi; k++ {
		if mode != fairclique.ModeRelative {
			// Weak/strong fix δ themselves; one cell per k.
			specs = append(specs, fairclique.QuerySpec{K: k, Mode: mode})
			continue
		}
		for d := dLo; d <= dHi; d++ {
			specs = append(specs, fairclique.QuerySpec{K: k, Delta: d})
		}
	}
	return specs, nil
}

// runGrid answers every cell through one warm session and prints the
// per-cell answers plus the session's amortization counters.
func runGrid(g *fairclique.Graph, specs []fairclique.QuerySpec, opt fairclique.SessionOptions, quiet bool) {
	s := fairclique.NewSession(g, opt)
	start := time.Now()
	results, err := s.FindGrid(specs)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	for i, spec := range specs {
		res := results[i]
		if quiet {
			fmt.Println(res.Size())
			continue
		}
		cell := fmt.Sprintf("k=%d δ=%d", spec.K, spec.Delta)
		switch spec.Mode {
		case fairclique.ModeWeak:
			cell = fmt.Sprintf("k=%d weak", spec.K)
		case fairclique.ModeStrong:
			cell = fmt.Sprintf("k=%d strong", spec.K)
		}
		note := ""
		if !res.Exact {
			note = "  (aborted by -max-nodes; may be sub-optimal)"
		}
		fmt.Printf("%-14s size %2d  (%d a, %d b)  %d nodes%s\n",
			cell, res.Size(), res.CountA, res.CountB, res.Stats.Nodes, note)
	}
	if quiet {
		return
	}
	st := s.Stats()
	fmt.Printf("grid: %d cells in %.2f ms\n", len(specs), float64(elapsed.Microseconds())/1000)
	fmt.Printf("session: %d nodes, %d reduction builds (%d chained), %d reuses, %d warm starts, %d dominance skips\n",
		st.Nodes, st.ReductionBuilds, st.ReductionChained, st.ReductionReuses, st.WarmStarts, st.DominanceSkips)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mfc:", err)
	os.Exit(1)
}
