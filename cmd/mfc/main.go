// Command mfc finds a maximum relative fair clique in an attributed
// graph file (the text format documented in the fairclique package:
// "v <id> <a|b>" and "e <u> <v>" records, or plain edge lists).
//
// Usage:
//
//	mfc -graph g.txt -k 3 -delta 1 [-bound cd] [-no-heur] [-no-bounds]
//	mfc -graph g.txt -k 3 -delta 1 -heuristic    # linear-time HeurRFC only
//	mfc -graph g.txt -k 3 -reduce                # reduction pipeline only
//	mfc -graph g.txt -k 3 -delta 1 -enum         # Bron-Kerbosch baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"fairclique"
)

var boundNames = map[string]fairclique.UpperBound{
	"ad":  fairclique.UBAdvanced,
	"deg": fairclique.UBDegeneracy,
	"h":   fairclique.UBHIndex,
	"cd":  fairclique.UBColorfulDegeneracy,
	"ch":  fairclique.UBColorfulHIndex,
	"cp":  fairclique.UBColorfulPath,
}

func main() {
	var (
		graphPath  = flag.String("graph", "", "path to the attributed graph file (required)")
		k          = flag.Int("k", 2, "per-attribute minimum count")
		delta      = flag.Int("delta", 1, "maximum attribute-count difference")
		bound      = flag.String("bound", "cd", "extra upper bound: ad, deg, h, cd, ch, cp")
		noHeur     = flag.Bool("no-heur", false, "disable HeurRFC seeding")
		noBounds   = flag.Bool("no-bounds", false, "disable upper-bound pruning (plain MaxRFC)")
		noReduce   = flag.Bool("no-reduce", false, "skip the reduction pipeline")
		heurOnly   = flag.Bool("heuristic", false, "run only the linear-time heuristic")
		reduceOnly = flag.Bool("reduce", false, "run only the reduction pipeline and report sizes")
		enumerate  = flag.Bool("enum", false, "use the Bron-Kerbosch enumeration baseline")
		maxNodes   = flag.Int64("max-nodes", 0, "abort after this many branch nodes (0 = unlimited)")
		workers    = flag.Int("workers", 1, "parallel branching workers (root branches are split inside each component)")
		quiet      = flag.Bool("q", false, "print only the clique size")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := fairclique.ReadGraphFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())
	}

	switch {
	case *reduceOnly:
		kept, stages, err := fairclique.Reduce(g, *k)
		if err != nil {
			fatal(err)
		}
		for _, s := range stages {
			fmt.Printf("%-16s %8d vertices %10d edges\n", s.Stage, s.Vertices, s.Edges)
		}
		fmt.Printf("kept %d vertices\n", len(kept))
		return

	case *heurOnly:
		start := time.Now()
		clique, ub, err := fairclique.Heuristic(g, *k, *delta)
		if err != nil {
			fatal(err)
		}
		report(g, clique, *quiet, time.Since(start))
		if !*quiet {
			fmt.Printf("upper bound: %d\n", ub)
		}
		return

	case *enumerate:
		start := time.Now()
		clique, err := fairclique.Enumerate(g, *k, *delta)
		if err != nil {
			fatal(err)
		}
		report(g, clique, *quiet, time.Since(start))
		return
	}

	ub, ok := boundNames[*bound]
	if !ok {
		fatal(fmt.Errorf("unknown bound %q (want ad, deg, h, cd, ch or cp)", *bound))
	}
	opt := fairclique.Options{
		K:                *k,
		Delta:            *delta,
		Bound:            ub,
		DisableBounds:    *noBounds,
		DisableHeuristic: *noHeur,
		DisableReduction: *noReduce,
		MaxNodes:         *maxNodes,
		Workers:          *workers,
	}
	start := time.Now()
	res, err := fairclique.Find(g, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	report(g, res.Clique, *quiet, elapsed)
	if !*quiet {
		fmt.Printf("attribute counts: %d a, %d b\n", res.CountA, res.CountB)
		fmt.Printf("reduced graph: %d vertices, %d edges\n",
			res.Stats.ReducedVertices, res.Stats.ReducedEdges)
		fmt.Printf("search: %d nodes, %d bound checks, %d bound prunes, heuristic seed %d\n",
			res.Stats.Nodes, res.Stats.BoundChecks, res.Stats.BoundPrunes, res.Stats.HeuristicSize)
		if !res.Exact {
			fmt.Println("WARNING: search aborted by -max-nodes; result may be sub-optimal")
		}
	}
}

func report(g *fairclique.Graph, clique []int, quiet bool, elapsed time.Duration) {
	if quiet {
		fmt.Println(len(clique))
		return
	}
	if clique == nil {
		fmt.Printf("no fair clique exists (%.2f ms)\n", float64(elapsed.Microseconds())/1000)
		return
	}
	sorted := append([]int(nil), clique...)
	sort.Ints(sorted)
	fmt.Printf("maximum fair clique: size %d (%.2f ms)\n", len(clique), float64(elapsed.Microseconds())/1000)
	fmt.Printf("vertices: %v\n", sorted)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mfc:", err)
	os.Exit(1)
}
