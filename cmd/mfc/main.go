// Command mfc finds a maximum relative fair clique in an attributed
// graph file (the text format documented in the fairclique package:
// "v <id> <a|b>" and "e <u> <v>" records, or plain edge lists).
//
// Usage:
//
//	mfc -graph g.txt -k 3 -delta 1 [-bound cd] [-no-heur] [-no-bounds]
//	mfc -graph g.txt -k 3 -delta 1 -deadline 500ms   # anytime: best clique + certified gap

//	mfc -graph g.txt -k 3 -delta 1 -heuristic    # linear-time HeurRFC only
//	mfc -graph g.txt -k 3 -reduce                # reduction pipeline only
//	mfc -graph g.txt -k 3 -delta 1 -enum         # Bron-Kerbosch baseline
//	mfc -graph g.txt -k 3 -delta 1 -enumerate    # ALL maximum fair cliques
//	mfc -graph g.txt -k 3 -delta 1 -top 5        # diversified top-5 by vertex coverage
//	mfc -graph g.txt -grid 'k=2..4,delta=1..3'   # multi-query session grid
//	mfc -graph g.txt -k 3 -delta 1 -apply '+e:0:5 -e:1:2'   # dynamic session
//	mfc -graph g.txt -repl                       # interactive session REPL
//
// The -grid form answers every (k, δ) cell of the given ranges through
// one warm fairclique.Session, so the reduction, ordering and successor
// masks are built once and the cells warm-start each other. A
// mode=weak or mode=strong entry switches the whole grid to that
// fairness model (the delta range is then ignored).
//
// The -apply form runs the query (or grid) on a session, applies the
// given delta — see the op syntax in internal/cli.ParseDelta: +e:U:V,
// -e:U:V, +v:a|b, -v:ID — and re-answers on the mutated graph, printing
// what the incremental invalidation retained. The -repl form reads
// find/grid/apply/stats commands from stdin against one long-lived
// session (try "help").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"fairclique"
	"fairclique/internal/cli"
)

var boundNames = map[string]fairclique.UpperBound{
	"ad":  fairclique.UBAdvanced,
	"deg": fairclique.UBDegeneracy,
	"h":   fairclique.UBHIndex,
	"cd":  fairclique.UBColorfulDegeneracy,
	"ch":  fairclique.UBColorfulHIndex,
	"cp":  fairclique.UBColorfulPath,
}

func main() {
	var (
		graphPath   = flag.String("graph", "", "path to the attributed graph file (required)")
		k           = flag.Int("k", 2, "per-attribute minimum count")
		delta       = flag.Int("delta", 1, "maximum attribute-count difference")
		bound       = flag.String("bound", "cd", "extra upper bound: ad, deg, h, cd, ch, cp")
		noHeur      = flag.Bool("no-heur", false, "disable HeurRFC seeding")
		noBounds    = flag.Bool("no-bounds", false, "disable upper-bound pruning (plain MaxRFC)")
		noReduce    = flag.Bool("no-reduce", false, "skip the reduction pipeline")
		heurOnly    = flag.Bool("heuristic", false, "run only the linear-time heuristic")
		reduceOnly  = flag.Bool("reduce", false, "run only the reduction pipeline and report sizes")
		exhaustive  = flag.Bool("enum", false, "use the Bron-Kerbosch enumeration baseline (one clique)")
		enumerate   = flag.Bool("enumerate", false, "enumerate ALL maximum fair cliques (collect-at-optimum engine)")
		topR        = flag.Int("top", 0, "with or without -enumerate: print a diversified top-R subset of the maximum fair cliques (0 = all)")
		maxNodes    = flag.Int64("max-nodes", 0, "abort after this many branch nodes (0 = unlimited)")
		deadline    = flag.Duration("deadline", 0, "anytime wall-clock budget, e.g. 500ms (0 = none); an aborted run prints its certified upper bound and gap")
		workers     = flag.Int("workers", 1, "parallel branching workers (a grid shares them through the session's work-stealing pool)")
		staticSplit = flag.Bool("static-split", false, "grid scheduling baseline: slice -workers statically across concurrent cells instead of the shared work-stealing pool")
		grid        = flag.String("grid", "", "answer a (k, delta) grid on one warm session, e.g. 'k=2..4,delta=1..3[,mode=weak|strong]'")
		applySpec   = flag.String("apply", "", "apply a graph delta on a warm session and re-answer, e.g. '+e:0:5 -e:1:2 +v:a -v:7'")
		repl        = flag.Bool("repl", false, "interactive session REPL on stdin (find/grid/apply/stats; see 'help')")
		quiet       = flag.Bool("q", false, "print only the clique size")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := fairclique.ReadGraphFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())
	}

	sessionOpts := func() fairclique.SessionOptions {
		ub, ok := boundNames[*bound]
		if !ok {
			fatal(fmt.Errorf("unknown bound %q (want ad, deg, h, cd, ch or cp)", *bound))
		}
		return fairclique.SessionOptions{
			Bound:            ub,
			DisableBounds:    *noBounds,
			DisableHeuristic: *noHeur,
			DisableReduction: *noReduce,
			MaxNodes:         *maxNodes,
			Workers:          *workers,
			StaticGridSplit:  *staticSplit,
		}
	}

	if *repl {
		runREPL(g, sessionOpts())
		return
	}

	if *grid != "" || *applySpec != "" {
		specs := []fairclique.QuerySpec{{K: *k, Delta: *delta}}
		if *grid != "" {
			var err error
			specs, err = parseGrid(*grid)
			if err != nil {
				fatal(err)
			}
		}
		if *applySpec == "" {
			runGrid(g, specs, sessionOpts(), *quiet)
			return
		}
		d, err := parseDelta(*applySpec)
		if err != nil {
			fatal(err)
		}
		runApply(g, specs, d, sessionOpts(), *quiet)
		return
	}

	switch {
	case *reduceOnly:
		kept, stages, err := fairclique.Reduce(g, *k)
		if err != nil {
			fatal(err)
		}
		for _, s := range stages {
			fmt.Printf("%-16s %8d vertices %10d edges\n", s.Stage, s.Vertices, s.Edges)
		}
		fmt.Printf("kept %d vertices\n", len(kept))
		return

	case *heurOnly:
		start := time.Now()
		clique, ub, err := fairclique.Heuristic(g, *k, *delta)
		if err != nil {
			fatal(err)
		}
		report(g, clique, *quiet, time.Since(start))
		if !*quiet {
			fmt.Printf("upper bound: %d\n", ub)
		}
		return

	case *exhaustive:
		start := time.Now()
		clique, err := fairclique.FindExhaustive(g, *k, *delta)
		if err != nil {
			fatal(err)
		}
		report(g, clique, *quiet, time.Since(start))
		return

	case *enumerate || *topR > 0:
		sess := fairclique.NewSession(g, sessionOpts())
		defer sess.Close()
		spec := fairclique.QuerySpec{K: *k, Delta: *delta, Kind: fairclique.KindEnumerateAll, Deadline: *deadline}
		if *topR > 0 {
			spec.Kind = fairclique.KindTopR
			spec.R = *topR
		}
		start := time.Now()
		rs, err := sess.Enumerate(spec)
		if err != nil {
			fatal(err)
		}
		reportSet(rs, *quiet, time.Since(start))
		return
	}

	ub, ok := boundNames[*bound]
	if !ok {
		fatal(fmt.Errorf("unknown bound %q (want ad, deg, h, cd, ch or cp)", *bound))
	}
	opt := fairclique.Options{
		K:                *k,
		Delta:            *delta,
		Bound:            ub,
		DisableBounds:    *noBounds,
		DisableHeuristic: *noHeur,
		DisableReduction: *noReduce,
		MaxNodes:         *maxNodes,
		Deadline:         *deadline,
		Workers:          *workers,
	}
	start := time.Now()
	res, err := fairclique.Find(g, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	report(g, res.Clique, *quiet, elapsed)
	if !*quiet {
		fmt.Printf("attribute counts: %d a, %d b\n", res.CountA, res.CountB)
		fmt.Printf("reduced graph: %d vertices, %d edges\n",
			res.Stats.ReducedVertices, res.Stats.ReducedEdges)
		fmt.Printf("search: %d nodes, %d bound checks, %d bound prunes, heuristic seed %d\n",
			res.Stats.Nodes, res.Stats.BoundChecks, res.Stats.BoundPrunes, res.Stats.HeuristicSize)
		if !res.Exact {
			fmt.Printf("anytime: budget expired; optimum is in [%d, %d] (gap %d)\n",
				res.Size(), res.UpperBound, res.Gap)
		}
	}
}

func report(g *fairclique.Graph, clique []int, quiet bool, elapsed time.Duration) {
	if quiet {
		fmt.Println(len(clique))
		return
	}
	if clique == nil {
		fmt.Printf("no fair clique exists (%.2f ms)\n", float64(elapsed.Microseconds())/1000)
		return
	}
	sorted := append([]int(nil), clique...)
	sort.Ints(sorted)
	fmt.Printf("maximum fair clique: size %d (%.2f ms)\n", len(clique), float64(elapsed.Microseconds())/1000)
	fmt.Printf("vertices: %v\n", sorted)
}

// reportSet prints an enumeration answer: the optimum size, the clique
// count, and each clique with its attribute counts.
func reportSet(rs *fairclique.ResultSet, quiet bool, elapsed time.Duration) {
	if quiet {
		fmt.Printf("%d %d\n", rs.Size, len(rs.Cliques))
		return
	}
	if len(rs.Cliques) == 0 {
		fmt.Printf("no fair clique exists (%.2f ms)\n", float64(elapsed.Microseconds())/1000)
		return
	}
	fmt.Printf("maximum fair cliques: size %d, %d cliques (%.2f ms)\n",
		rs.Size, len(rs.Cliques), float64(elapsed.Microseconds())/1000)
	for i, c := range rs.Cliques {
		fmt.Printf("  #%d %v (%d a, %d b)\n", i+1, c, rs.Counts[i][0], rs.Counts[i][1])
	}
	if !rs.Exact {
		fmt.Printf("anytime: budget expired; the set is partial, optimum in [%d, %d]\n",
			rs.Size, rs.UpperBound)
	}
}

// parseGrid expands a grid spec into query cells; the parsing itself —
// including the rejection of descending and empty ranges — is shared
// with cmd/benchmark through internal/cli.
func parseGrid(spec string) ([]fairclique.QuerySpec, error) {
	cells, err := cli.ParseGrid(spec)
	if err != nil {
		return nil, err
	}
	specs := make([]fairclique.QuerySpec, len(cells))
	for i, c := range cells {
		specs[i] = fairclique.QuerySpec{K: c.K, Delta: c.Delta}
		switch c.Mode {
		case cli.ModeWeak:
			specs[i].Mode = fairclique.ModeWeak
		case cli.ModeStrong:
			specs[i].Mode = fairclique.ModeStrong
		}
	}
	return specs, nil
}

// parseDelta maps a cli delta spec onto the public Delta type.
func parseDelta(spec string) (fairclique.Delta, error) {
	gd, err := cli.ParseDelta(spec)
	if err != nil {
		return fairclique.Delta{}, err
	}
	d := fairclique.Delta{AddVertices: gd.AddVertices}
	for _, e := range gd.AddEdges {
		d.AddEdges = append(d.AddEdges, [2]int{int(e[0]), int(e[1])})
	}
	for _, e := range gd.DelEdges {
		d.DelEdges = append(d.DelEdges, [2]int{int(e[0]), int(e[1])})
	}
	for _, v := range gd.DelVertices {
		d.DelVertices = append(d.DelVertices, int(v))
	}
	return d, nil
}

// runGrid answers every cell through one warm session and prints the
// per-cell answers plus the session's amortization counters.
func runGrid(g *fairclique.Graph, specs []fairclique.QuerySpec, opt fairclique.SessionOptions, quiet bool) {
	s := fairclique.NewSession(g, opt)
	defer s.Close()
	start := time.Now()
	results, err := s.FindGrid(specs)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	printCells(specs, results, quiet)
	if quiet {
		return
	}
	fmt.Printf("grid: %d cells in %.2f ms\n", len(specs), float64(elapsed.Microseconds())/1000)
	printSessionStats(s)
}

// printCells prints per-cell answers of a grid run.
func printCells(specs []fairclique.QuerySpec, results []*fairclique.Result, quiet bool) {
	for i, spec := range specs {
		res := results[i]
		if quiet {
			fmt.Println(res.Size())
			continue
		}
		cell := fmt.Sprintf("k=%d δ=%d", spec.K, spec.Delta)
		switch spec.Mode {
		case fairclique.ModeWeak:
			cell = fmt.Sprintf("k=%d weak", spec.K)
		case fairclique.ModeStrong:
			cell = fmt.Sprintf("k=%d strong", spec.K)
		}
		note := ""
		if !res.Exact {
			note = fmt.Sprintf("  (budget expired; optimum in [%d, %d])", res.Size(), res.UpperBound)
		}
		fmt.Printf("%-14s size %2d  (%d a, %d b)  %d nodes%s\n",
			cell, res.Size(), res.CountA, res.CountB, res.Stats.Nodes, note)
	}
}

// runApply demonstrates the dynamic session: answer the cells, apply
// the delta, re-answer on the mutated graph, and print what the
// component-scoped invalidation retained.
func runApply(g *fairclique.Graph, specs []fairclique.QuerySpec, d fairclique.Delta, opt fairclique.SessionOptions, quiet bool) {
	s := fairclique.NewSession(g, opt)
	defer s.Close()
	results, err := s.FindGrid(specs)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Println("before delta:")
	}
	printCells(specs, results, quiet)

	start := time.Now()
	ast, err := s.Apply(d)
	if err != nil {
		fatal(err)
	}
	applyElapsed := time.Since(start)
	start = time.Now()
	results, err = s.FindGrid(specs)
	if err != nil {
		fatal(err)
	}
	requeryElapsed := time.Since(start)
	if !quiet {
		fmt.Printf("delta: +%d edges, -%d edges, +%d vertices -> epoch %d (%.2f ms)\n",
			ast.InsertedEdges, ast.DeletedEdges, ast.NewVertices, ast.Epoch,
			float64(applyElapsed.Microseconds())/1000)
		fmt.Printf("retained: %d component preps, %d/%d snapshots verbatim (%d rippled), %d/%d pool seeds\n",
			ast.CompPrepsReused, ast.SnapshotsReused,
			ast.SnapshotsReused+ast.SnapshotsPatched+ast.SnapshotsRippled,
			ast.SnapshotsRippled, ast.PoolRetained, ast.PoolRetained+ast.PoolDropped)
		fmt.Printf("after delta (%.2f ms):\n", float64(requeryElapsed.Microseconds())/1000)
	}
	printCells(specs, results, quiet)
	if !quiet {
		printSessionStats(s)
	}
}

// printSessionStats prints the session's amortization counters.
func printSessionStats(s *fairclique.Session) {
	st := s.Stats()
	fmt.Printf("session: %d queries, %d nodes, %d reduction builds (%d chained), %d reuses, %d warm starts, %d dominance skips\n",
		st.Queries, st.Nodes, st.ReductionBuilds, st.ReductionChained, st.ReductionReuses, st.WarmStarts, st.DominanceSkips)
	if st.WorkerReleases > 0 {
		fmt.Printf("scheduler: %d donations, %d steals (%d cross-cell, %d local / %d remote), %d pool searches on %d lifetime workers\n",
			st.Donations, st.Steals, st.CrossCellSteals, st.LocalSteals, st.RemoteSteals,
			st.PoolSearches, st.WorkerReleases)
	}
	if st.SpeculativeStarts > 0 {
		fmt.Printf("speculation: %d cells launched ahead of their chain (%d committed, %d cancelled)\n",
			st.SpeculativeStarts, st.SpeculativeWins, st.SpeculativeCancels)
	}
	if st.Applies > 0 {
		fmt.Printf("dynamic: %d applies (epoch %d), %d comp preps reused, %d/%d snapshots verbatim (%d rippled), pool %d kept / %d dropped, %d bridge seeds\n",
			st.Applies, st.Epoch, st.CompPrepsReused, st.SnapshotsReused,
			st.SnapshotsReused+st.SnapshotsPatched+st.SnapshotsRippled,
			st.SnapshotsRippled, st.PoolRetained, st.PoolDropped, st.BridgeSeeds)
	}
}

// runREPL drives one long-lived session interactively: queries and
// deltas interleave on stdin, mirroring the service regime.
func runREPL(g *fairclique.Graph, opt fairclique.SessionOptions) {
	s := fairclique.NewSession(g, opt)
	defer s.Close()
	fmt.Printf("session ready: %d vertices, %d edges (try 'help')\n", s.N(), s.M())
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case "quit", "exit", "q":
			return
		case "help":
			fmt.Println(`commands:
  find K DELTA        one (k, δ) relative query
  find K weak|strong  one weak/strong query
  grid SPEC           e.g. grid k=2..4,delta=1..3
  apply OPS           e.g. apply +e:0:5 -e:1:2 +v:a -v:7
  stats               session amortization counters
  graph               current graph size
  quit`)
		case "graph":
			fmt.Printf("graph: %d vertices, %d edges\n", s.N(), s.M())
		case "stats":
			printSessionStats(s)
		case "find":
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				fmt.Println("usage: find K DELTA | find K weak|strong")
				continue
			}
			klo, khi, err := cli.ParseRange(fields[0])
			if err != nil || klo != khi {
				fmt.Println("usage: find K DELTA (single k)")
				continue
			}
			spec := fairclique.QuerySpec{K: klo}
			switch fields[1] {
			case "weak":
				spec.Mode = fairclique.ModeWeak
			case "strong":
				spec.Mode = fairclique.ModeStrong
			default:
				dlo, dhi, err := cli.ParseRange(fields[1])
				if err != nil || dlo != dhi {
					fmt.Println("usage: find K DELTA (single delta; use 'grid' for ranges)")
					continue
				}
				spec.Delta = dlo
			}
			start := time.Now()
			res, err := s.Find(spec)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printCells([]fairclique.QuerySpec{spec}, []*fairclique.Result{res}, false)
			fmt.Printf("(%.2f ms)\n", float64(time.Since(start).Microseconds())/1000)
		case "grid":
			specs, err := parseGrid(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			start := time.Now()
			results, err := s.FindGrid(specs)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printCells(specs, results, false)
			fmt.Printf("grid: %d cells in %.2f ms\n", len(specs), float64(time.Since(start).Microseconds())/1000)
		case "apply":
			d, err := parseDelta(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			start := time.Now()
			ast, err := s.Apply(d)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("epoch %d: +%d edges, -%d edges, +%d vertices; retained %d comp preps, %d/%d snapshots (%d rippled), %d/%d seeds (%.2f ms)\n",
				ast.Epoch, ast.InsertedEdges, ast.DeletedEdges, ast.NewVertices,
				ast.CompPrepsReused, ast.SnapshotsReused,
				ast.SnapshotsReused+ast.SnapshotsPatched+ast.SnapshotsRippled,
				ast.SnapshotsRippled,
				ast.PoolRetained, ast.PoolRetained+ast.PoolDropped,
				float64(time.Since(start).Microseconds())/1000)
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mfc:", err)
	os.Exit(1)
}
