package fairclique

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end — they are
// part of the public deliverable and must keep working. Skipped in
// -short mode (each `go run` compiles).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example integration in -short mode")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "maximum fair team"},
		{"./examples/teamformation", "largest balanced team"},
		{"./examples/marketing", "campaign roster"},
		{"./examples/reduction", "with reduction"},
		{"./examples/fairnessmodels", "strong"},
		{"./examples/sessiongrid", "dominance skips"},
		{"./examples/dynamic", "component preps reused"},
		{"./examples/enumerate", "diversified top-2"},
		{"./examples/serve", "cached=true"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", tc.dir)
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &out
			if err := cmd.Run(); err != nil {
				t.Fatalf("%s failed: %v\n%s", tc.dir, err, out.String())
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Fatalf("%s output missing %q:\n%s", tc.dir, tc.want, out.String())
			}
		})
	}
}
