package fairclique

import (
	"testing"
)

// allBoundConfigs is the public Table II sweep.
var allBoundConfigs = []UpperBound{
	UBAdvanced, UBDegeneracy, UBHIndex,
	UBColorfulDegeneracy, UBColorfulHIndex, UBColorfulPath,
}

// independentFind runs the one-shot engine for the same cell a session
// query describes: the reference every grid cell must match.
func independentFind(t *testing.T, g *Graph, spec QuerySpec, bound UpperBound) *Result {
	t.Helper()
	delta := spec.Delta
	switch spec.Mode {
	case ModeWeak:
		delta = g.N()
	case ModeStrong:
		delta = 0
	}
	res, err := Find(g, Options{K: spec.K, Delta: delta, Bound: bound})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The differential grid wall: on fuzzed random graphs, every cell of
// Session.FindGrid must exactly match an independent Find call — same
// size, and a valid fair clique for the cell's own constraint — across
// all six Table II bound configurations and both weak and strong modes
// alongside the relative cells. Every configuration runs twice: a
// serial session and a Workers=4 session, the latter exercising the
// session-global work-stealing pool (drivers donating subtrees,
// released executors stealing them across cells) on exactly the same
// grid — the differential guard of the shared-pool scheduler.
func TestSessionGridMatchesIndependentFindAllBounds(t *testing.T) {
	var reuses int64
	for seed := uint64(0); seed < 6; seed++ {
		n := 26 + int(seed%3)*6
		g := buildRandom(seed, n, 0.35+0.05*float64(seed%3))
		var specs []QuerySpec
		for k := 1; k <= 3; k++ {
			for d := 0; d <= 2; d++ {
				specs = append(specs, QuerySpec{K: k, Delta: d})
			}
			specs = append(specs,
				QuerySpec{K: k, Mode: ModeWeak},
				QuerySpec{K: k, Mode: ModeStrong})
		}
		// Rotate through the six bound configurations across the fuzz
		// instances and run every configuration on the first instance.
		configs := allBoundConfigs
		if seed > 0 {
			configs = []UpperBound{allBoundConfigs[seed%6]}
		}
		for _, bound := range configs {
			s := NewSession(g, SessionOptions{Bound: bound})
			pooled := NewSession(g, SessionOptions{Bound: bound, Workers: 4})
			rs, err := s.FindGrid(specs)
			if err != nil {
				t.Fatal(err)
			}
			rsPooled, err := pooled.FindGrid(specs)
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != len(specs) {
				t.Fatalf("got %d results for %d specs", len(rs), len(specs))
			}
			for i, spec := range specs {
				want := independentFind(t, g, spec, bound)
				if rs[i].Size() != want.Size() {
					t.Fatalf("seed=%d bound=%v spec=%+v: grid %d, independent %d",
						seed, bound, spec, rs[i].Size(), want.Size())
				}
				if rsPooled[i].Size() != want.Size() {
					t.Fatalf("seed=%d bound=%v spec=%+v: shared-pool grid %d, independent %d",
						seed, bound, spec, rsPooled[i].Size(), want.Size())
				}
				if rs[i].Size() > 0 {
					delta := spec.Delta
					switch spec.Mode {
					case ModeWeak:
						delta = g.N()
					case ModeStrong:
						delta = 0
					}
					if !g.IsFairClique(rs[i].Clique, spec.K, delta) {
						t.Fatalf("seed=%d bound=%v spec=%+v: grid clique invalid", seed, bound, spec)
					}
					if !g.IsFairClique(rsPooled[i].Clique, spec.K, delta) {
						t.Fatalf("seed=%d bound=%v spec=%+v: shared-pool grid clique invalid", seed, bound, spec)
					}
					if !rs[i].Exact || !rsPooled[i].Exact {
						t.Fatalf("seed=%d bound=%v spec=%+v: grid cell inexact without MaxNodes", seed, bound, spec)
					}
				}
			}
			st := s.Stats()
			if st.Queries != int64(len(specs)) {
				t.Fatalf("seed=%d: stats counted %d queries, want %d", seed, st.Queries, len(specs))
			}
			if st.ReductionBuilds > 3 {
				t.Fatalf("seed=%d: %d reduction builds for 3 distinct k", seed, st.ReductionBuilds)
			}
			reuses += st.ReductionReuses
		}
	}
	// Satellite requirement: the reduction/prep cache must be provably
	// exercised by the grids (queries served without a rebuild).
	if reuses == 0 {
		t.Fatal("no grid query reused a cached reduction")
	}
}

// Session.Stats must add up across a grid: nodes of the cells, warm
// starts and dominance skips all land in one place (the satellite's
// aggregation story).
func TestSessionStatsAggregation(t *testing.T) {
	g := buildComplete(10, 8) // skewed K10: optima 4/5/8/10 at δ=0/1/4/6
	s := NewSession(g)
	specs := []QuerySpec{
		{K: 2, Delta: 6}, {K: 2, Delta: 4}, {K: 2, Delta: 1}, {K: 2, Delta: 0},
	}
	rs, err := s.FindGrid(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{10, 8, 5, 4} {
		if rs[i].Size() != want {
			t.Fatalf("cell %d: size %d, want %d", i, rs[i].Size(), want)
		}
	}
	st := s.Stats()
	if st.Queries != 4 {
		t.Fatalf("queries = %d, want 4", st.Queries)
	}
	if st.ReductionBuilds != 1 || st.ReductionReuses != 3 {
		t.Fatalf("reduction builds/reuses = %d/%d, want 1/3", st.ReductionBuilds, st.ReductionReuses)
	}
	var cellNodes int64
	for _, r := range rs {
		cellNodes += r.Stats.Nodes
	}
	if st.Nodes != cellNodes {
		t.Fatalf("session nodes %d != sum of cell nodes %d", st.Nodes, cellNodes)
	}
	// Re-running the whole grid must be pure dominance skips.
	if _, err := s.FindGrid(specs); err != nil {
		t.Fatal(err)
	}
	st2 := s.Stats()
	if st2.Nodes != st.Nodes {
		t.Fatalf("grid re-run branched %d extra nodes", st2.Nodes-st.Nodes)
	}
	if st2.DominanceSkips != st.DominanceSkips+4 {
		t.Fatalf("grid re-run skips = %d, want %d", st2.DominanceSkips, st.DominanceSkips+4)
	}
}

// Sessions answer weak/strong cells identically to the dedicated
// FindWeak/FindStrong entry points.
func TestSessionModesMatchDedicatedEntryPoints(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := buildRandom(seed+50, 30, 0.4)
		s := NewSession(g)
		for k := 1; k <= 3; k++ {
			weak, err := s.Find(QuerySpec{K: k, Mode: ModeWeak})
			if err != nil {
				t.Fatal(err)
			}
			wantWeak, err := FindWeak(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if weak.Size() != wantWeak.Size() {
				t.Fatalf("seed=%d k=%d: session weak %d, FindWeak %d",
					seed, k, weak.Size(), wantWeak.Size())
			}
			strong, err := s.Find(QuerySpec{K: k, Mode: ModeStrong})
			if err != nil {
				t.Fatal(err)
			}
			wantStrong, err := FindStrong(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if strong.Size() != wantStrong.Size() {
				t.Fatalf("seed=%d k=%d: session strong %d, FindStrong %d",
					seed, k, strong.Size(), wantStrong.Size())
			}
		}
	}
}

// Sessions snapshot the graph at creation; the underlying Graph object
// remains usable for independent queries afterwards.
func TestSessionSnapshotSemantics(t *testing.T) {
	g := buildComplete(8, 4)
	s := NewSession(g)
	before, err := s.Find(QuerySpec{K: 2, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != 8 {
		t.Fatalf("session on K8: %d, want 8", before.Size())
	}
	// Mutate the graph: the session must keep answering on the frozen
	// snapshot.
	v := g.AddVertex(AttrA)
	for u := 0; u < v; u++ {
		g.AddEdge(u, v)
	}
	after, err := s.Find(QuerySpec{K: 2, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != 8 {
		t.Fatalf("session observed a post-freeze mutation: %d, want 8", after.Size())
	}
	// A fresh session (and plain Find) see the new vertex.
	fresh, err := NewSession(g).Find(QuerySpec{K: 2, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Size() != 9 {
		t.Fatalf("fresh session: %d, want 9", fresh.Size())
	}
}

func TestSessionValidationErrors(t *testing.T) {
	s := NewSession(buildComplete(6, 3))
	if _, err := s.Find(QuerySpec{K: 0}); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := s.Find(QuerySpec{K: 2, Delta: -1}); err == nil {
		t.Fatal("negative delta must error")
	}
	if _, err := s.Find(QuerySpec{K: 2, Mode: Mode(99)}); err == nil {
		t.Fatal("unknown mode must error")
	}
	if _, err := s.FindGrid([]QuerySpec{{K: 2, Delta: 1}, {K: 0}}); err == nil {
		t.Fatal("invalid grid cell must error")
	}
}
